//===- engine/ExecutionEngine.cpp -----------------------------------------===//

#include "engine/ExecutionEngine.h"

#include "core/DataRace.h"
#include "core/SeqConsistency.h"
#include "litmus/PathEnum.h"
#include "support/CapacityError.h"
#include "support/Str.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>

using namespace jsmm;

unsigned ExecutionEngine::effectiveThreads() const {
  if (Cfg.Threads)
    return Cfg.Threads;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

bool OutcomeSummary::allows(const Outcome &O) const {
  return std::binary_search(Allowed.begin(), Allowed.end(), O);
}

std::vector<std::string> OutcomeSummary::outcomeStrings() const {
  std::vector<std::string> Out;
  Out.reserve(Allowed.size());
  for (const Outcome &O : Allowed)
    Out.push_back(O.toString());
  return Out;
}

//===----------------------------------------------------------------------===//
// Capacity checks
//===----------------------------------------------------------------------===//

namespace {

std::optional<std::string> capacityErrorFor(unsigned Bound, unsigned Cap) {
  if (Bound <= Cap)
    return std::nullopt;
  return "program too large (" + std::to_string(Bound) + " events > " +
         std::to_string(Cap) + ")";
}

unsigned targetEventBound(const CompiledTarget &CT) {
  unsigned Bound = CT.NumLocs;
  for (const std::vector<TargetInstr> &Body : CT.Threads)
    Bound += static_cast<unsigned>(Body.size());
  return Bound;
}

/// Throws the capacity diagnostic for the dynamic serving cap. Entry
/// points call this before touching the candidate space so a too-large
/// program fails with the program-level message rather than the
/// relation-level one.
template <typename ProgramT> void checkCapacity(const ProgramT &P) {
  if (std::optional<std::string> Error = ExecutionEngine::capacityError(P))
    throw CapacityError(*Error);
}

/// The witness-carrying entry points return Relation-typed executions, so
/// they serve the fixed tier only; this throws the 64-event diagnostic.
template <typename ProgramT> void checkFixedCapacity(const ProgramT &P) {
  if (std::optional<std::string> Error =
          ExecutionEngine::fixedCapacityError(P))
    throw CapacityError(*Error);
}

} // namespace

std::optional<std::string> ExecutionEngine::capacityError(const Program &P) {
  return capacityErrorFor(programEventUpperBound(P), DynRelation::MaxSize);
}

std::optional<std::string>
ExecutionEngine::capacityError(const ArmProgram &P) {
  return capacityErrorFor(armProgramEventUpperBound(P), Relation::MaxSize);
}

std::optional<std::string>
ExecutionEngine::capacityError(const CompiledTarget &CT) {
  return capacityErrorFor(targetEventBound(CT), DynRelation::MaxSize);
}

std::optional<std::string>
ExecutionEngine::fixedCapacityError(const Program &P) {
  return capacityErrorFor(programEventUpperBound(P), Relation::MaxSize);
}

std::optional<std::string>
ExecutionEngine::fixedCapacityError(const CompiledTarget &CT) {
  return capacityErrorFor(targetEventBound(CT), Relation::MaxSize);
}

namespace {

/// One unit of sharded work: a control-flow combination, optionally
/// restricted to the K-th eligible writer for the first byte of the first
/// read (so a single combination with a large justification tree still
/// splits across workers).
struct WorkItem {
  size_t Combo = 0;
  int Writer = -1; ///< -1: all writers
};

/// Runs \p Body over \p NumItems items on \p Threads workers (inline when
/// sequential). Items are claimed from an atomic counter; \p Body must
/// only touch state owned by its item index.
void runSharded(size_t NumItems, unsigned Threads,
                const std::function<void(size_t)> &Body) {
  if (Threads <= 1 || NumItems <= 1) {
    for (size_t I = 0; I < NumItems; ++I)
      Body(I);
    return;
  }
  std::atomic<size_t> Next{0};
  auto Worker = [&] {
    for (size_t I = Next.fetch_add(1); I < NumItems; I = Next.fetch_add(1))
      Body(I);
  };
  std::vector<std::thread> Pool;
  unsigned N = static_cast<unsigned>(
      std::min<size_t>(Threads, NumItems));
  Pool.reserve(N);
  for (unsigned T = 0; T < N; ++T)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();
}

//===----------------------------------------------------------------------===//
// JavaScript candidate space
//===----------------------------------------------------------------------===//

/// The per-thread control-flow paths of a program, with mixed-radix
/// indexing of their combinations (last thread fastest, matching the
/// seed's recursion order).
struct JsSpace {
  std::vector<std::vector<ThreadPath>> PerThread;
  size_t Combos = 1;

  explicit JsSpace(const Program &P) {
    for (unsigned T = 0; T < P.numThreads(); ++T)
      PerThread.push_back(enumeratePaths(P.threadBody(T)));
    for (const std::vector<ThreadPath> &Paths : PerThread)
      Combos *= Paths.size();
  }

  std::vector<const ThreadPath *> chosen(size_t Idx) const {
    std::vector<const ThreadPath *> C(PerThread.size());
    for (size_t T = PerThread.size(); T-- > 0;) {
      C[T] = &PerThread[T][Idx % PerThread[T].size()];
      Idx /= PerThread[T].size();
    }
    return C;
  }
};

/// The materialised skeleton of one path combination: events, sb, and the
/// bookkeeping the justifier needs. Generic over the relation tier.
template <typename RelT> struct JsBase {
  BasicCandidateExecution<RelT> CE;
  std::vector<EventId> Reads;
  std::map<EventId, unsigned> RegOfEvent;
  std::vector<const ThreadPath *> Paths;
};

template <typename RelT>
JsBase<RelT> buildJsBase(const Program &P,
                         std::vector<const ThreadPath *> Chosen) {
  JsBase<RelT> B;
  B.Paths = std::move(Chosen);

  std::vector<Event> Events;
  // One Init event per buffer.
  for (unsigned Buf = 0; Buf < P.bufferSizes().size(); ++Buf)
    Events.push_back(makeInit(static_cast<EventId>(Events.size()),
                              P.bufferSizes()[Buf], Buf));
  // Thread events, in path order.
  std::vector<std::vector<EventId>> ThreadEvents(P.numThreads());
  for (unsigned T = 0; T < B.Paths.size(); ++T) {
    for (const Instr *I : B.Paths[T]->Accesses) {
      EventId Id = static_cast<EventId>(Events.size());
      const Acc &A = I->Access;
      Event E;
      switch (I->K) {
      case Instr::Kind::Load:
        E = makeRead(Id, static_cast<int>(T), A.Ord, A.Offset, A.Width,
                     /*Value=*/0, A.TearFree, A.Block);
        B.RegOfEvent[Id] = I->Dst;
        break;
      case Instr::Kind::Store:
        E = makeWrite(Id, static_cast<int>(T), A.Ord, A.Offset, A.Width,
                      I->Value, A.TearFree, A.Block);
        break;
      case Instr::Kind::Rmw:
        E = makeRMW(Id, static_cast<int>(T), A.Offset, A.Width,
                    /*ReadValue=*/0, I->Value, A.Block);
        B.RegOfEvent[Id] = I->Dst;
        break;
      default:
        assert(false && "conditionals never materialise as events");
      }
      Events.push_back(E);
      ThreadEvents[T].push_back(Id);
    }
  }
  B.CE = BasicCandidateExecution<RelT>(std::move(Events));
  for (const std::vector<EventId> &Seq : ThreadEvents)
    for (size_t I = 0; I < Seq.size(); ++I)
      for (size_t J = I + 1; J < Seq.size(); ++J)
        B.CE.Sb.set(Seq[I], Seq[J]);
  for (const Event &E : B.CE.Events)
    if (E.isRead())
      B.Reads.push_back(E.Id);
  return B;
}

/// \returns the writers eligible to justify byte \p Loc of read \p R, in
/// event order (the order the justifier explores them in — work items
/// index into this list).
template <typename RelT>
unsigned countJsWriters(const BasicCandidateExecution<RelT> &CE, EventId R,
                        unsigned Loc) {
  unsigned Count = 0;
  for (const Event &W : CE.Events)
    if (W.Id != R && W.Block == CE.Events[R].Block && W.writesByte(Loc))
      ++Count;
  return Count;
}

/// Recursive reads-byte-from justification of a JS base, byte by byte,
/// with register-constraint pruning (always) and model-admission pruning
/// (when a model is supplied).
template <typename RelT> class JsJustifier {
  using ExecT = BasicCandidateExecution<RelT>;

public:
  JsJustifier(JsBase<RelT> &B, const JsModel *Prune, uint64_t *PrunedSubtrees,
              int FirstWriterOnly,
              const std::function<bool(const ExecT &, const Outcome &)>
                  &Visit)
      : B(B), Prune(Prune), PrunedSubtrees(PrunedSubtrees),
        FirstWriterOnly(FirstWriterOnly), Visit(Visit) {}

  /// \returns false if the visitor stopped the enumeration.
  bool run() {
    B.CE.Rbf.clear();
    return justifyRead(0);
  }

private:
  bool justifyRead(size_t ReadIdx) {
    if (ReadIdx == B.Reads.size())
      return emit();
    return justifyByte(ReadIdx, B.CE.Events[B.Reads[ReadIdx]].readBegin());
  }

  bool justifyByte(size_t ReadIdx, unsigned Loc) {
    Event &R = B.CE.Events[B.Reads[ReadIdx]];
    if (Loc == R.readEnd()) {
      // The read's value is complete; prune against the path constraints,
      // then against the model's tot-independent axioms (monotone in the
      // justified prefix, so the whole subtree dies with it).
      auto RegIt = B.RegOfEvent.find(R.Id);
      assert(RegIt != B.RegOfEvent.end() && "read event without a register");
      uint64_t Value = valueOfBytes(R.ReadBytes);
      if (!constraintsAllow(*B.Paths[R.Thread], RegIt->second, Value))
        return true;
      if (Prune && ReadIdx + 1 < B.Reads.size() &&
          !Prune->admitsPartial(B.CE)) {
        if (PrunedSubtrees)
          ++*PrunedSubtrees;
        return true;
      }
      return justifyRead(ReadIdx + 1);
    }
    unsigned WriterPos = 0;
    for (const Event &W : B.CE.Events) {
      if (W.Id == R.Id || W.Block != R.Block || !W.writesByte(Loc))
        continue;
      unsigned ThisPos = WriterPos++;
      if (FirstWriterOnly >= 0 && ReadIdx == 0 && Loc == R.readBegin() &&
          ThisPos != static_cast<unsigned>(FirstWriterOnly))
        continue;
      B.CE.Rbf.push_back({Loc, W.Id, R.Id});
      R.ReadBytes[Loc - R.Index] = W.writtenByteAt(Loc);
      bool Continue = justifyByte(ReadIdx, Loc + 1);
      B.CE.Rbf.pop_back();
      if (!Continue)
        return false;
    }
    return true;
  }

  bool emit() {
    Outcome O;
    for (const auto &[Id, Reg] : B.RegOfEvent)
      O.add(B.CE.Events[Id].Thread, Reg,
            valueOfBytes(B.CE.Events[Id].ReadBytes));
    return Visit(B.CE, O);
  }

  JsBase<RelT> &B;
  const JsModel *Prune;
  uint64_t *PrunedSubtrees;
  int FirstWriterOnly;
  const std::function<bool(const ExecT &, const Outcome &)> &Visit;
};

/// Sequential walk of the whole JS candidate space.
template <typename RelT>
bool walkJs(const Program &P, const JsModel *Prune, uint64_t *PrunedSubtrees,
            const std::function<bool(const BasicCandidateExecution<RelT> &,
                                     const Outcome &)> &Visit) {
  JsSpace Space(P);
  for (size_t C = 0; C < Space.Combos; ++C) {
    JsBase<RelT> B = buildJsBase<RelT>(P, Space.chosen(C));
    JsJustifier<RelT> J(B, Prune, PrunedSubtrees, /*FirstWriterOnly=*/-1,
                        Visit);
    if (!J.run())
      return false;
  }
  return true;
}

/// The shared JS enumeration core: identical structure for both relation
/// tiers, so the fast path and the dynamic path cannot diverge.
template <typename RelT>
BasicEnumerationResult<RelT>
enumerateJsCore(const Program &P, const JsModel &M, const EngineConfig &Cfg,
                unsigned Threads, EngineStats &Stats) {
  using ExecT = BasicCandidateExecution<RelT>;
  using ResultT = BasicEnumerationResult<RelT>;
  const JsModel *Prune = Cfg.Prune ? &M : nullptr;
  JsSpace Space(P);

  auto Accumulate = [&M](ResultT &Into, const ExecT &CE, const Outcome &O) {
    ++Into.CandidatesConsidered;
    if (Into.Allowed.count(O))
      return true; // outcome already justified
    RelT Tot;
    if (M.allows(CE, &Tot)) {
      ++Into.ValidCandidates;
      ExecT Witness = CE;
      Witness.Tot = Tot;
      Into.Allowed.emplace(O, std::move(Witness));
    }
    return true;
  };

  if (Threads <= 1) {
    // Sequential: one shared result, with global outcome deduplication —
    // exactly the seed's behaviour (modulo pruning).
    ResultT Result;
    Stats.WorkItems = Space.Combos;
    walkJs<RelT>(P, Prune, &Stats.PrunedSubtrees,
                 [&](const ExecT &CE, const Outcome &O) {
                   return Accumulate(Result, CE, O);
                 });
    return Result;
  }

  // Sharded: split combinations — and, within each, the first read's
  // writer choices — into work items with item-local results, merged in
  // item order for determinism.
  std::vector<WorkItem> Items;
  std::vector<JsBase<RelT>> Bases;
  for (size_t C = 0; C < Space.Combos; ++C) {
    Bases.push_back(buildJsBase<RelT>(P, Space.chosen(C)));
    const JsBase<RelT> &B = Bases.back();
    if (B.Reads.empty()) {
      Items.push_back({C, -1});
      continue;
    }
    const Event &R0 = B.CE.Events[B.Reads[0]];
    unsigned NW = countJsWriters(B.CE, R0.Id, R0.readBegin());
    for (unsigned K = 0; K < NW; ++K)
      Items.push_back({C, static_cast<int>(K)});
  }
  Stats.WorkItems = Items.size();

  std::vector<ResultT> PerItem(Items.size());
  std::vector<uint64_t> PerItemPruned(Items.size(), 0);
  runSharded(Items.size(), Threads, [&](size_t I) {
    JsBase<RelT> B = Bases[Items[I].Combo]; // worker-private copy (the justifier mutates it)
    std::function<bool(const ExecT &, const Outcome &)> Into =
        [&](const ExecT &CE, const Outcome &O) {
          return Accumulate(PerItem[I], CE, O);
        };
    JsJustifier<RelT> J(B, Prune, &PerItemPruned[I], Items[I].Writer, Into);
    J.run();
  });

  ResultT Result;
  for (size_t I = 0; I < Items.size(); ++I) {
    Result.CandidatesConsidered += PerItem[I].CandidatesConsidered;
    Result.ValidCandidates += PerItem[I].ValidCandidates;
    Stats.PrunedSubtrees += PerItemPruned[I];
    for (auto &[O, Witness] : PerItem[I].Allowed)
      Result.Allowed.emplace(O, std::move(Witness));
  }
  return Result;
}

template <typename ResultT>
OutcomeSummary summarize(const ResultT &R) {
  OutcomeSummary S;
  S.CandidatesConsidered = R.CandidatesConsidered;
  S.ValidCandidates = R.ValidCandidates;
  S.Allowed.reserve(R.Allowed.size());
  for (const auto &[O, Witness] : R.Allowed) {
    (void)Witness;
    S.Allowed.push_back(O);
  }
  return S;
}

//===----------------------------------------------------------------------===//
// ARMv8 candidate space
//===----------------------------------------------------------------------===//

struct ArmSpace {
  std::vector<std::vector<ArmThreadPath>> PerThread;
  size_t Combos = 1;

  explicit ArmSpace(const ArmProgram &P) {
    for (unsigned T = 0; T < P.numThreads(); ++T)
      PerThread.push_back(enumerateArmPaths(P.threadBody(T)));
    for (const std::vector<ArmThreadPath> &Paths : PerThread)
      Combos *= Paths.size();
  }

  std::vector<const ArmThreadPath *> chosen(size_t Idx) const {
    std::vector<const ArmThreadPath *> C(PerThread.size());
    for (size_t T = PerThread.size(); T-- > 0;) {
      C[T] = &PerThread[T][Idx % PerThread[T].size()];
      Idx /= PerThread[T].size();
    }
    return C;
  }
};

/// Materialises the skeleton for one choice of paths.
ArmSkeleton buildArmSkeleton(const ArmProgram &P,
                             std::vector<const ArmThreadPath *> Chosen) {
  ArmSkeleton S;
  S.Paths = std::move(Chosen);

  struct DepFixup {
    EventId Ev;
    int AddrReg, DataReg;
    uint64_t CtrlRegs;
    int RmwTag;
    bool IsLoad;
  };
  std::vector<ArmEvent> Events;
  for (unsigned B = 0; B < P.bufferSizes().size(); ++B)
    Events.push_back(makeArmInit(static_cast<EventId>(Events.size()),
                                 P.bufferSizes()[B], B));
  std::vector<std::vector<EventId>> ThreadEvents(P.numThreads());
  std::vector<DepFixup> Fixups;
  for (unsigned T = 0; T < S.Paths.size(); ++T) {
    for (const ArmPathElem &Elem : S.Paths[T]->Elems) {
      const ArmInstr &I = *Elem.I;
      EventId Id = static_cast<EventId>(Events.size());
      ArmEvent E;
      switch (I.K) {
      case ArmInstr::Kind::Load:
        E = makeArmRead(Id, static_cast<int>(T), I.Offset, I.Width,
                        I.Acquire, I.Exclusive, I.Block);
        S.RegOfEvent[Id] = I.Dst;
        break;
      case ArmInstr::Kind::Store:
        E = makeArmWrite(Id, static_cast<int>(T), I.Offset, I.Width, I.Value,
                         I.Release, I.Exclusive, I.Block);
        break;
      case ArmInstr::Kind::DmbFull:
      case ArmInstr::Kind::DmbLd:
      case ArmInstr::Kind::DmbSt:
      case ArmInstr::Kind::Isb:
        E = makeArmFence(Id, static_cast<int>(T),
                         I.K == ArmInstr::Kind::DmbFull ? ArmKind::DmbFull
                         : I.K == ArmInstr::Kind::DmbLd ? ArmKind::DmbLd
                         : I.K == ArmInstr::Kind::DmbSt ? ArmKind::DmbSt
                                                        : ArmKind::Isb);
        break;
      case ArmInstr::Kind::IfEq:
      case ArmInstr::Kind::IfNe:
        continue; // branches do not materialise as events
      }
      E.SourceTag = I.SourceTag;
      uint64_t CtrlRegs = Elem.CtrlRegs;
      if (I.CtrlDepOn >= 0)
        CtrlRegs |= uint64_t(1) << static_cast<unsigned>(I.CtrlDepOn);
      Fixups.push_back({Id, I.AddrDepOn, I.DataDepOn, CtrlRegs, I.RmwTag,
                        I.K == ArmInstr::Kind::Load});
      Events.push_back(E);
      ThreadEvents[T].push_back(Id);
    }
  }

  S.Exec = ArmExecution(std::move(Events));
  ArmExecution &X = S.Exec;
  for (const std::vector<EventId> &Seq : ThreadEvents)
    for (size_t I = 0; I < Seq.size(); ++I)
      for (size_t J = I + 1; J < Seq.size(); ++J)
        X.Po.set(Seq[I], Seq[J]);

  // Wire register-carried dependencies. The provider of a register is the
  // po-latest load writing it before the consumer.
  auto ProviderOf = [&](const DepFixup &F, unsigned Reg) -> int {
    int Provider = -1;
    for (const auto &[Ev, R] : S.RegOfEvent)
      if (R == Reg && X.Events[Ev].Thread == X.Events[F.Ev].Thread &&
          X.Po.get(Ev, F.Ev))
        Provider = std::max(Provider, static_cast<int>(Ev));
    return Provider;
  };
  for (const DepFixup &F : Fixups) {
    if (F.AddrReg >= 0) {
      int Prov = ProviderOf(F, static_cast<unsigned>(F.AddrReg));
      if (Prov >= 0)
        X.AddrDep.set(static_cast<unsigned>(Prov), F.Ev);
    }
    if (F.DataReg >= 0) {
      int Prov = ProviderOf(F, static_cast<unsigned>(F.DataReg));
      if (Prov >= 0)
        X.DataDep.set(static_cast<unsigned>(Prov), F.Ev);
    }
    uint64_t Ctrl = F.CtrlRegs;
    while (Ctrl) {
      unsigned Reg = static_cast<unsigned>(__builtin_ctzll(Ctrl));
      Ctrl &= Ctrl - 1;
      int Prov = ProviderOf(F, Reg);
      if (Prov >= 0)
        X.CtrlDep.set(static_cast<unsigned>(Prov), F.Ev);
    }
  }
  // Exclusive pairs: a load and the po-next store sharing its RmwTag.
  for (const DepFixup &FL : Fixups) {
    if (!FL.IsLoad || FL.RmwTag < 0)
      continue;
    for (const DepFixup &FS : Fixups) {
      if (FS.IsLoad || FS.RmwTag != FL.RmwTag)
        continue;
      if (X.Events[FS.Ev].Thread == X.Events[FL.Ev].Thread &&
          X.Po.get(FL.Ev, FS.Ev))
        X.Rmw.set(FL.Ev, FS.Ev);
    }
  }
  return S;
}

unsigned countArmWriters(const ArmExecution &X, EventId R, unsigned Loc) {
  unsigned Count = 0;
  for (const ArmEvent &W : X.Events)
    if (W.isWrite() && W.Id != R && W.Block == X.Events[R].Block &&
        W.touchesByte(Loc))
      ++Count;
  return Count;
}

/// Enumerates rbf justifications and coherence orders on top of an ARM
/// skeleton.
class ArmJustifier {
public:
  ArmJustifier(const ArmSkeleton &S, int FirstWriterOnly,
               const std::function<bool(const ArmExecution &,
                                        const Outcome &)> &Visit)
      : S(S), X(S.Exec), FirstWriterOnly(FirstWriterOnly), Visit(Visit) {
    for (const ArmEvent &E : X.Events)
      if (E.isRead())
        Reads.push_back(E.Id);
  }

  bool run() { return justifyRead(0); }

private:
  bool justifyRead(size_t ReadIdx) {
    if (ReadIdx == Reads.size())
      return chooseCoherence();
    return justifyByte(ReadIdx, X.Events[Reads[ReadIdx]].begin());
  }

  bool justifyByte(size_t ReadIdx, unsigned Loc) {
    ArmEvent &R = X.Events[Reads[ReadIdx]];
    if (Loc == R.end()) {
      auto RegIt = S.RegOfEvent.find(R.Id);
      assert(RegIt != S.RegOfEvent.end() && "read event without a register");
      uint64_t Value = valueOfBytes(R.Bytes);
      if (!armConstraintsAllow(*S.Paths[R.Thread], RegIt->second, Value))
        return true;
      return justifyRead(ReadIdx + 1);
    }
    unsigned WriterPos = 0;
    for (const ArmEvent &W : X.Events) {
      if (!W.isWrite() || W.Id == R.Id || W.Block != R.Block ||
          !W.touchesByte(Loc))
        continue;
      unsigned ThisPos = WriterPos++;
      if (FirstWriterOnly >= 0 && ReadIdx == 0 && Loc == R.begin() &&
          ThisPos != static_cast<unsigned>(FirstWriterOnly))
        continue;
      X.Rbf.push_back({Loc, W.Id, R.Id});
      R.Bytes[Loc - R.Index] = W.byteAt(Loc);
      bool Continue = justifyByte(ReadIdx, Loc + 1);
      X.Rbf.pop_back();
      if (!Continue)
        return false;
    }
    return true;
  }

  bool chooseCoherence() {
    X.Co = X.computeGranules();
    return forEachCoherenceCompletion(X, [this] { return emit(); });
  }

  bool emit() {
    Outcome O;
    for (const auto &[Id, Reg] : S.RegOfEvent)
      O.add(X.Events[Id].Thread, Reg, valueOfBytes(X.Events[Id].Bytes));
    return Visit(X, O);
  }

  const ArmSkeleton &S;
  ArmExecution X;
  std::vector<EventId> Reads;
  int FirstWriterOnly;
  const std::function<bool(const ArmExecution &, const Outcome &)> &Visit;
};

//===----------------------------------------------------------------------===//
// Target-architecture candidate space
//===----------------------------------------------------------------------===//

/// The materialised base of a compiled target program. Target programs are
/// straight-line (the §6.3 fragment), so there is exactly one control-flow
/// combination; the candidate space is rf justifications × per-location
/// coherence orders. Generic over the relation tier.
template <typename RelT> struct TargetBase {
  BasicTargetExecution<RelT> X;
  std::vector<EventId> Reads;
  std::map<EventId, unsigned> RegOfEvent;
};

template <typename RelT>
TargetBase<RelT> buildTargetBase(const CompiledTarget &CT) {
  TargetBase<RelT> B;
  std::vector<TargetEvent> Events;
  for (unsigned L = 0; L < CT.NumLocs; ++L) {
    TargetEvent Init;
    Init.Id = static_cast<EventId>(Events.size());
    Init.Thread = -1;
    Init.Kind = TKind::Write;
    Init.Loc = L;
    Init.WriteVal = 0;
    Init.IsInit = true;
    Events.push_back(Init);
  }
  std::vector<std::vector<EventId>> ThreadEvents(CT.Threads.size());
  for (unsigned T = 0; T < CT.Threads.size(); ++T) {
    for (const TargetInstr &I : CT.Threads[T]) {
      TargetEvent E;
      E.Id = static_cast<EventId>(Events.size());
      E.Thread = static_cast<int>(T);
      E.Kind = I.Kind;
      E.Loc = I.Loc;
      E.WriteVal = I.Value;
      E.Acq = I.Acq;
      E.Rel = I.Rel;
      E.Sc = I.Sc;
      E.Fence = I.Fence;
      E.SourceIdx = I.SourceIdx;
      if (E.isRead())
        B.RegOfEvent[E.Id] = I.DstReg;
      Events.push_back(E);
      ThreadEvents[T].push_back(E.Id);
    }
  }
  B.X = BasicTargetExecution<RelT>(std::move(Events), CT.NumLocs);
  for (const std::vector<EventId> &Seq : ThreadEvents)
    for (size_t I = 0; I < Seq.size(); ++I)
      for (size_t J = I + 1; J < Seq.size(); ++J)
        B.X.Po.set(Seq[I], Seq[J]);
  for (const TargetEvent &E : B.X.Events)
    if (E.isRead())
      B.Reads.push_back(E.Id);
  return B;
}

template <typename RelT>
unsigned countTargetWriters(const BasicTargetExecution<RelT> &X, EventId R) {
  unsigned Count = 0;
  for (const TargetEvent &W : X.Events)
    if (W.isWrite() && W.Id != R && W.Loc == X.Events[R].Loc)
      ++Count;
  return Count;
}

/// Enumerates rf justifications and coherence orders of a target base,
/// pruning rf subtrees via the backend's monotone admission check.
template <typename RelT> class TargetJustifier {
  using ExecT = BasicTargetExecution<RelT>;

public:
  TargetJustifier(TargetBase<RelT> &B, const TargetModel *Prune,
                  uint64_t *PrunedSubtrees, int FirstWriterOnly,
                  const std::function<bool(const ExecT &, const Outcome &)>
                      &Visit)
      : B(B), Prune(Prune), PrunedSubtrees(PrunedSubtrees),
        FirstWriterOnly(FirstWriterOnly), Visit(Visit) {}

  bool run() { return justify(0); }

private:
  bool justify(size_t ReadIdx) {
    if (ReadIdx == B.Reads.size())
      return chooseCo(0);
    EventId R = B.Reads[ReadIdx];
    unsigned WriterPos = 0;
    for (const TargetEvent &W : B.X.Events) {
      if (!W.isWrite() || W.Id == R || W.Loc != B.X.Events[R].Loc)
        continue;
      unsigned ThisPos = WriterPos++;
      if (FirstWriterOnly >= 0 && ReadIdx == 0 &&
          ThisPos != static_cast<unsigned>(FirstWriterOnly))
        continue;
      B.X.Rf.set(W.Id, R);
      B.X.Events[R].ReadVal = W.WriteVal;
      bool Continue = true;
      if (Prune && !Prune->admitsPartial(B.X)) {
        if (PrunedSubtrees)
          ++*PrunedSubtrees;
      } else {
        Continue = justify(ReadIdx + 1);
      }
      B.X.Rf.clear(W.Id, R);
      if (!Continue)
        return false;
    }
    return true;
  }

  bool chooseCo(unsigned Loc) {
    if (Loc == B.X.CoPerLoc.size())
      return emit();
    std::vector<EventId> Writers;
    EventId Init = ~0u;
    for (const TargetEvent &E : B.X.Events) {
      if (!E.isWrite() || E.Loc != Loc)
        continue;
      if (E.IsInit)
        Init = E.Id;
      else
        Writers.push_back(E.Id);
    }
    std::sort(Writers.begin(), Writers.end());
    do {
      B.X.CoPerLoc[Loc].clear();
      if (Init != ~0u)
        B.X.CoPerLoc[Loc].push_back(Init);
      for (EventId W : Writers)
        B.X.CoPerLoc[Loc].push_back(W);
      if (!chooseCo(Loc + 1))
        return false;
    } while (std::next_permutation(Writers.begin(), Writers.end()));
    B.X.CoPerLoc[Loc].clear();
    return true;
  }

  bool emit() {
    Outcome O;
    for (const auto &[Id, Reg] : B.RegOfEvent)
      O.add(B.X.Events[Id].Thread, Reg, B.X.Events[Id].ReadVal);
    return Visit(B.X, O);
  }

  TargetBase<RelT> &B;
  const TargetModel *Prune;
  uint64_t *PrunedSubtrees;
  int FirstWriterOnly;
  const std::function<bool(const ExecT &, const Outcome &)> &Visit;
};

/// The shared target enumeration core for both relation tiers.
template <typename RelT>
BasicTargetEnumerationResult<RelT>
enumerateTargetCore(const CompiledTarget &CT, const TargetModel &M,
                    const EngineConfig &Cfg, unsigned Threads,
                    EngineStats &Stats) {
  using ExecT = BasicTargetExecution<RelT>;
  using ResultT = BasicTargetEnumerationResult<RelT>;
  const TargetModel *Prune = Cfg.Prune ? &M : nullptr;

  auto Accumulate = [&M](ResultT &Into, const ExecT &X, const Outcome &O) {
    ++Into.CandidatesConsidered;
    if (Into.Allowed.count(O))
      return true; // outcome already witnessed
    if (M.allows(X)) {
      ++Into.ConsistentCandidates;
      Into.Allowed.emplace(O, X);
    }
    return true;
  };

  TargetBase<RelT> Base = buildTargetBase<RelT>(CT);
  unsigned FirstWriters =
      Base.Reads.empty() ? 0 : countTargetWriters(Base.X, Base.Reads[0]);
  if (Threads <= 1 || FirstWriters <= 1) {
    ResultT Result;
    Stats.WorkItems = 1;
    std::function<bool(const ExecT &, const Outcome &)> Into =
        [&](const ExecT &X, const Outcome &O) {
          return Accumulate(Result, X, O);
        };
    TargetJustifier<RelT> J(Base, Prune, &Stats.PrunedSubtrees,
                            /*FirstWriterOnly=*/-1, Into);
    J.run();
    return Result;
  }

  // Sharded: the single straight-line combination splits across the first
  // read's writer choices; item-local results merge in item order.
  Stats.WorkItems = FirstWriters;
  std::vector<ResultT> PerItem(FirstWriters);
  std::vector<uint64_t> PerItemPruned(FirstWriters, 0);
  runSharded(FirstWriters, Threads, [&](size_t I) {
    TargetBase<RelT> B = Base; // worker-private copy (the justifier mutates it)
    std::function<bool(const ExecT &, const Outcome &)> Into =
        [&](const ExecT &X, const Outcome &O) {
          return Accumulate(PerItem[I], X, O);
        };
    TargetJustifier<RelT> J(B, Prune, &PerItemPruned[I],
                            static_cast<int>(I), Into);
    J.run();
  });

  ResultT Result;
  for (size_t I = 0; I < FirstWriters; ++I) {
    Result.CandidatesConsidered += PerItem[I].CandidatesConsidered;
    Result.ConsistentCandidates += PerItem[I].ConsistentCandidates;
    Stats.PrunedSubtrees += PerItemPruned[I];
    for (auto &[O, Witness] : PerItem[I].Allowed)
      Result.Allowed.emplace(O, std::move(Witness));
  }
  return Result;
}

template <typename RelT>
OutcomeSummary summarizeTarget(const BasicTargetEnumerationResult<RelT> &R) {
  OutcomeSummary S;
  S.CandidatesConsidered = R.CandidatesConsidered;
  S.ValidCandidates = R.ConsistentCandidates;
  S.Allowed.reserve(R.Allowed.size());
  for (const auto &[O, Witness] : R.Allowed) {
    (void)Witness;
    S.Allowed.push_back(O);
  }
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// JavaScript entry points
//===----------------------------------------------------------------------===//

bool ExecutionEngine::forEachCandidate(
    const Program &P,
    const std::function<bool(const CandidateExecution &, const Outcome &)>
        &Visit) const {
  checkFixedCapacity(P);
  return walkJs<Relation>(P, /*Prune=*/nullptr, /*PrunedSubtrees=*/nullptr,
                          Visit);
}

bool ExecutionEngine::forEachAdmittedCandidate(
    const Program &P, const JsModel &M,
    const std::function<bool(const CandidateExecution &, const Outcome &)>
        &Visit) const {
  checkFixedCapacity(P);
  Stats = EngineStats();
  return walkJs<Relation>(P, Cfg.Prune ? &M : nullptr,
                          &Stats.PrunedSubtrees, Visit);
}

EnumerationResult ExecutionEngine::enumerate(const Program &P,
                                             const JsModel &M) const {
  checkFixedCapacity(P);
  Stats = EngineStats();
  return enumerateJsCore<Relation>(P, M, Cfg, effectiveThreads(), Stats);
}

OutcomeSummary ExecutionEngine::enumerateOutcomes(const Program &P,
                                                  const JsModel &M) const {
  checkCapacity(P);
  Stats = EngineStats();
  if (programEventUpperBound(P) <= Relation::MaxSize && !Cfg.ForceDynRelation)
    return summarize(
        enumerateJsCore<Relation>(P, M, Cfg, effectiveThreads(), Stats));
  return summarize(
      enumerateJsCore<DynRelation>(P, M, Cfg, effectiveThreads(), Stats));
}

ScDrfReport ExecutionEngine::scDrf(const Program &P, const JsModel &M) const {
  checkFixedCapacity(P);
  Stats = EngineStats();
  ScDrfReport Report;
  walkJs<Relation>(
      P, Cfg.Prune ? &M : nullptr, &Stats.PrunedSubtrees,
      [&](const CandidateExecution &CE, const Outcome &O) {
        (void)O;
        if (!M.allows(CE))
          return true;
        if (Report.DataRaceFree && !isRaceFree(CE, M.spec())) {
          Report.DataRaceFree = false;
          Report.RaceWitness = CE;
        }
        if (Report.AllValidExecutionsSC && !isSequentiallyConsistent(CE)) {
          Report.AllValidExecutionsSC = false;
          Report.NonScWitness = CE;
        }
        // Keep scanning until both facets are resolved.
        return Report.DataRaceFree || Report.AllValidExecutionsSC;
      });
  return Report;
}

//===----------------------------------------------------------------------===//
// ARMv8 entry points
//===----------------------------------------------------------------------===//

bool ExecutionEngine::forEachSkeleton(
    const ArmProgram &P,
    const std::function<bool(const ArmSkeleton &)> &Visit) const {
  checkCapacity(P);
  ArmSpace Space(P);
  for (size_t C = 0; C < Space.Combos; ++C)
    if (!Visit(buildArmSkeleton(P, Space.chosen(C))))
      return false;
  return true;
}

bool ExecutionEngine::forEachArmCandidate(
    const ArmProgram &P,
    const std::function<bool(const ArmExecution &, const Outcome &)> &Visit)
    const {
  return forEachSkeleton(P, [&](const ArmSkeleton &S) {
    ArmJustifier J(S, /*FirstWriterOnly=*/-1, Visit);
    return J.run();
  });
}

ArmEnumerationResult ExecutionEngine::enumerate(const ArmProgram &P,
                                                const Armv8Model &M) const {
  checkCapacity(P);
  Stats = EngineStats();
  unsigned Threads = effectiveThreads();
  ArmSpace Space(P);

  auto Accumulate = [&M](ArmEnumerationResult &Into, const ArmExecution &X,
                         const Outcome &O) {
    ++Into.CandidatesConsidered;
    if (Into.Allowed.count(O))
      return true;
    if (M.allows(X)) {
      ++Into.ConsistentCandidates;
      Into.Allowed.emplace(O, X);
    }
    return true;
  };

  if (Threads <= 1) {
    ArmEnumerationResult Result;
    Stats.WorkItems = Space.Combos;
    forEachArmCandidate(P, [&](const ArmExecution &X, const Outcome &O) {
      return Accumulate(Result, X, O);
    });
    return Result;
  }

  std::vector<WorkItem> Items;
  std::vector<ArmSkeleton> Skeletons;
  for (size_t C = 0; C < Space.Combos; ++C) {
    Skeletons.push_back(buildArmSkeleton(P, Space.chosen(C)));
    const ArmSkeleton &S = Skeletons.back();
    EventId FirstRead = ~0u;
    for (const ArmEvent &E : S.Exec.Events)
      if (E.isRead()) {
        FirstRead = E.Id;
        break;
      }
    if (FirstRead == ~0u) {
      Items.push_back({C, -1});
      continue;
    }
    unsigned NW = countArmWriters(S.Exec, FirstRead,
                                  S.Exec.Events[FirstRead].begin());
    for (unsigned K = 0; K < NW; ++K)
      Items.push_back({C, static_cast<int>(K)});
  }
  Stats.WorkItems = Items.size();

  std::vector<ArmEnumerationResult> PerItem(Items.size());
  runSharded(Items.size(), Threads, [&](size_t I) {
    std::function<bool(const ArmExecution &, const Outcome &)> Into =
        [&](const ArmExecution &X, const Outcome &O) {
          return Accumulate(PerItem[I], X, O);
        };
    ArmJustifier J(Skeletons[Items[I].Combo], Items[I].Writer, Into);
    J.run();
  });

  ArmEnumerationResult Result;
  for (size_t I = 0; I < Items.size(); ++I) {
    Result.CandidatesConsidered += PerItem[I].CandidatesConsidered;
    Result.ConsistentCandidates += PerItem[I].ConsistentCandidates;
    for (auto &[O, Witness] : PerItem[I].Allowed)
      Result.Allowed.emplace(O, std::move(Witness));
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Target-architecture entry points
//===----------------------------------------------------------------------===//

bool ExecutionEngine::forEachTargetCandidate(
    const CompiledTarget &CT,
    const std::function<bool(const TargetExecution &, const Outcome &)>
        &Visit) const {
  checkFixedCapacity(CT);
  TargetBase<Relation> B = buildTargetBase<Relation>(CT);
  TargetJustifier<Relation> J(B, /*Prune=*/nullptr,
                              /*PrunedSubtrees=*/nullptr,
                              /*FirstWriterOnly=*/-1, Visit);
  return J.run();
}

bool ExecutionEngine::forEachAdmittedTargetCandidate(
    const CompiledTarget &CT, const TargetModel &M,
    const std::function<bool(const TargetExecution &, const Outcome &)>
        &Visit) const {
  checkFixedCapacity(CT);
  Stats = EngineStats();
  TargetBase<Relation> B = buildTargetBase<Relation>(CT);
  TargetJustifier<Relation> J(B, Cfg.Prune ? &M : nullptr,
                              &Stats.PrunedSubtrees,
                              /*FirstWriterOnly=*/-1, Visit);
  return J.run();
}

TargetEnumerationResult
ExecutionEngine::enumerate(const CompiledTarget &CT,
                           const TargetModel &M) const {
  checkFixedCapacity(CT);
  Stats = EngineStats();
  return enumerateTargetCore<Relation>(CT, M, Cfg, effectiveThreads(), Stats);
}

OutcomeSummary ExecutionEngine::enumerateOutcomes(const CompiledTarget &CT,
                                                  const TargetModel &M) const {
  checkCapacity(CT);
  Stats = EngineStats();
  if (targetEventBound(CT) <= Relation::MaxSize && !Cfg.ForceDynRelation)
    return summarizeTarget(
        enumerateTargetCore<Relation>(CT, M, Cfg, effectiveThreads(), Stats));
  return summarizeTarget(enumerateTargetCore<DynRelation>(
      CT, M, Cfg, effectiveThreads(), Stats));
}

//===----------------------------------------------------------------------===//
// Skeleton-search support
//===----------------------------------------------------------------------===//

namespace {

bool twinJustify(
    CandidateExecution &Js, ArmExecution &Arm, size_t ReadIdx,
    const std::vector<EventId> &Reads,
    const std::function<bool(const CandidateExecution &, const ArmExecution &)>
        &Visit) {
  if (ReadIdx == Reads.size())
    return Visit(Js, Arm);
  EventId R = Reads[ReadIdx];
  unsigned Loc = Js.Events[R].Index;
  for (const Event &W : Js.Events) {
    if (W.Id == R || !W.writesByte(Loc))
      continue;
    Js.Rbf.push_back({Loc, W.Id, R});
    Arm.Rbf.push_back({Loc, W.Id, R});
    Js.Events[R].ReadBytes[0] = W.writtenByteAt(Loc);
    Arm.Events[R].Bytes[0] = W.writtenByteAt(Loc);
    bool Continue = twinJustify(Js, Arm, ReadIdx + 1, Reads, Visit);
    Js.Rbf.pop_back();
    Arm.Rbf.pop_back();
    if (!Continue)
      return false;
  }
  return true;
}

} // namespace

bool ExecutionEngine::forEachTwinJustification(
    CandidateExecution &Js, ArmExecution &Arm,
    const std::function<bool(const CandidateExecution &, const ArmExecution &)>
        &Visit) {
  std::vector<EventId> Reads;
  for (const Event &E : Js.Events)
    if (E.isRead())
      Reads.push_back(E.Id);
  return twinJustify(Js, Arm, 0, Reads, Visit);
}
