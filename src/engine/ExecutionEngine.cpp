//===- engine/ExecutionEngine.cpp -----------------------------------------===//

#include "engine/ExecutionEngine.h"

#include "analysis/ScEnumeration.h"
#include "analysis/StaticAnalysis.h"
#include "analysis/StaticValues.h"
#include "core/DataRace.h"
#include "core/SeqConsistency.h"
#include "engine/Symmetry.h"
#include "litmus/PathEnum.h"
#include "obs/Obs.h"
#include "solver/TotSolver.h"
#include "support/CapacityError.h"
#include "support/Str.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>

using namespace jsmm;

unsigned ExecutionEngine::effectiveThreads() const {
  if (Cfg.Threads)
    return Cfg.Threads;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

bool OutcomeSummary::allows(const Outcome &O) const {
  return std::binary_search(Allowed.begin(), Allowed.end(), O);
}

std::vector<std::string> OutcomeSummary::outcomeStrings() const {
  std::vector<std::string> Out;
  Out.reserve(Allowed.size());
  for (const Outcome &O : Allowed)
    Out.push_back(O.toString());
  return Out;
}

//===----------------------------------------------------------------------===//
// Capacity checks
//===----------------------------------------------------------------------===//

namespace {

std::optional<std::string> capacityErrorFor(unsigned Bound, unsigned Cap) {
  if (Bound <= Cap)
    return std::nullopt;
  return "program too large (" + std::to_string(Bound) + " events > " +
         std::to_string(Cap) + ")";
}

unsigned targetEventBound(const CompiledTarget &CT) {
  unsigned Bound = CT.NumLocs;
  for (const std::vector<TargetInstr> &Body : CT.Threads)
    Bound += static_cast<unsigned>(Body.size());
  return Bound;
}

/// Throws the capacity diagnostic for the dynamic serving cap. Entry
/// points call this before touching the candidate space so a too-large
/// program fails with the program-level message rather than the
/// relation-level one.
template <typename ProgramT> void checkCapacity(const ProgramT &P) {
  if (std::optional<std::string> Error = ExecutionEngine::capacityError(P)) {
    if (obs::TraceSink *T = obs::trace()) {
      JsonValue F = JsonValue::object();
      F.set("error", JsonValue(*Error));
      T->event("capacity-reject", std::move(F));
    }
    if (obs::metricsEnabled())
      obs::registry().counter("engine.capacity_rejects").add(1);
    throw CapacityError(*Error);
  }
}

/// The witness-carrying entry points return Relation-typed executions, so
/// they serve the fixed tier only; this throws the 64-event diagnostic.
template <typename ProgramT> void checkFixedCapacity(const ProgramT &P) {
  if (std::optional<std::string> Error =
          ExecutionEngine::fixedCapacityError(P))
    throw CapacityError(*Error);
}

} // namespace

std::optional<std::string> ExecutionEngine::capacityError(const Program &P) {
  return capacityErrorFor(programEventUpperBound(P), DynRelation::MaxSize);
}

std::optional<std::string>
ExecutionEngine::capacityError(const ArmProgram &P) {
  return capacityErrorFor(armProgramEventUpperBound(P), Relation::MaxSize);
}

std::optional<std::string>
ExecutionEngine::capacityError(const CompiledTarget &CT) {
  return capacityErrorFor(targetEventBound(CT), DynRelation::MaxSize);
}

std::optional<std::string>
ExecutionEngine::fixedCapacityError(const Program &P) {
  return capacityErrorFor(programEventUpperBound(P), Relation::MaxSize);
}

std::optional<std::string>
ExecutionEngine::fixedCapacityError(const CompiledTarget &CT) {
  return capacityErrorFor(targetEventBound(CT), Relation::MaxSize);
}

namespace {

/// One unit of sharded work: a control-flow combination, optionally
/// restricted to the K-th eligible writer for the first byte of the first
/// read (so a single combination with a large justification tree still
/// splits across workers).
struct WorkItem {
  size_t Combo = 0;
  int Writer = -1; ///< -1: all writers
};

/// Runs \p Body over \p NumItems items on \p Threads workers (inline when
/// sequential). Items are claimed from an atomic counter; \p Body must
/// only touch state owned by its item index.
void runSharded(size_t NumItems, unsigned Threads,
                const std::function<void(size_t)> &Body) {
  if (Threads <= 1 || NumItems <= 1) {
    for (size_t I = 0; I < NumItems; ++I)
      Body(I);
    return;
  }
  std::atomic<size_t> Next{0};
  // Worker threads inherit the spawning thread's solver-activity sink so
  // per-job attribution (the service installs one sink per job) survives
  // the engine's own sharding; the sink's fields are atomic.
  SolverActivitySink *ParentSink = currentSolverActivitySink();
  auto Worker = [&, ParentSink] {
    setCurrentSolverActivitySink(ParentSink);
    for (size_t I = Next.fetch_add(1); I < NumItems; I = Next.fetch_add(1))
      Body(I);
  };
  std::vector<std::thread> Pool;
  unsigned N = static_cast<unsigned>(
      std::min<size_t>(Threads, NumItems));
  Pool.reserve(N);
  for (unsigned T = 0; T < N; ++T)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();
}

//===----------------------------------------------------------------------===//
// JavaScript candidate space
//===----------------------------------------------------------------------===//

/// The per-thread control-flow paths of a program, with mixed-radix
/// indexing of their combinations (last thread fastest, matching the
/// seed's recursion order).
struct JsSpace {
  std::vector<std::vector<ThreadPath>> PerThread;
  size_t Combos = 1;

  explicit JsSpace(const Program &P) {
    for (unsigned T = 0; T < P.numThreads(); ++T)
      PerThread.push_back(enumeratePaths(P.threadBody(T)));
    for (const std::vector<ThreadPath> &Paths : PerThread)
      Combos *= Paths.size();
  }

  std::vector<const ThreadPath *> chosen(size_t Idx) const {
    std::vector<const ThreadPath *> C(PerThread.size());
    for (size_t T = PerThread.size(); T-- > 0;) {
      C[T] = &PerThread[T][Idx % PerThread[T].size()];
      Idx /= PerThread[T].size();
    }
    return C;
  }

  /// Decomposes \p Idx into per-thread path indices (same mixed radix as
  /// chosen()).
  std::vector<size_t> indices(size_t Idx) const {
    std::vector<size_t> C(PerThread.size());
    for (size_t T = PerThread.size(); T-- > 0;) {
      C[T] = Idx % PerThread[T].size();
      Idx /= PerThread[T].size();
    }
    return C;
  }
};

//===----------------------------------------------------------------------===//
// Equivalence-aware enumeration (EngineConfig::Reduction)
//===----------------------------------------------------------------------===//

/// Program-level reduction context for one JS enumeration: the symmetry
/// classes plus the model spec (the rf sleep-set keys must mirror the
/// spec's sw definition and tear rule exactly).
struct JsReductionCtx {
  ThreadSymmetry Sym;
  ModelSpec Spec;
};

/// \returns true if \p C is the canonical representative of its orbit
/// under the symmetry classes: within each class, path indices must be
/// non-decreasing by thread index. Skipped combinations are thread
/// permutations of a canonical one; the orbit closure of the outcome set
/// restores their outcomes.
bool canonicalCombo(const JsSpace &Space, const ThreadSymmetry &Sym,
                    size_t C) {
  if (Sym.empty())
    return true;
  std::vector<size_t> Idx = Space.indices(C);
  for (const std::vector<unsigned> &Cls : Sym.Classes)
    for (size_t K = 1; K < Cls.size(); ++K)
      if (Idx[Cls[K - 1]] > Idx[Cls[K]])
        return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Value-aware static pruning (EngineConfig::StaticFastPath)
//===----------------------------------------------------------------------===//

/// [read idx][byte offset][eligible-writer position] -> allowed flag. The
/// writer positions index the same eligible-writer order the justifier
/// walks (and the sleep-set Explore masks use).
using StaticAllowMask = std::vector<std::vector<std::vector<uint8_t>>>;

/// Per thread, per path index: 1 iff StaticValues::pathFeasible. Dropping
/// an infeasible combination is sound: every candidate on it dies at the
/// contradicted read's constraintsAllow check before being emitted, so
/// its valid-outcome contribution is empty — and under reduction, orbit
/// siblings of an infeasible canonical combination choose the same path
/// multiset, so they are infeasible too and the orbit closure of the
/// empty set stays empty.
std::vector<std::vector<uint8_t>>
feasiblePaths(const JsSpace &Space, const analysis::StaticValues &SV) {
  std::vector<std::vector<uint8_t>> F(Space.PerThread.size());
  for (size_t T = 0; T < Space.PerThread.size(); ++T) {
    F[T].reserve(Space.PerThread[T].size());
    for (const ThreadPath &Path : Space.PerThread[T])
      F[T].push_back(SV.pathFeasible(Path) ? 1 : 0);
  }
  return F;
}

bool comboFeasible(const JsSpace &Space,
                   const std::vector<std::vector<uint8_t>> &Feasible,
                   size_t C) {
  std::vector<size_t> Idx = Space.indices(C);
  for (size_t T = 0; T < Idx.size(); ++T)
    if (!Feasible[T][Idx[T]])
      return false;
  return true;
}

/// The materialised skeleton of one path combination: events, sb, and the
/// bookkeeping the justifier needs. Generic over the relation tier.
template <typename RelT> struct JsBase {
  BasicCandidateExecution<RelT> CE;
  std::vector<EventId> Reads;
  std::map<EventId, unsigned> RegOfEvent;
  std::vector<const ThreadPath *> Paths;
  /// Per-thread path indices of this combination (filled by the walkers
  /// when reduction is active; twin sleeps need to know that two threads
  /// of an exact class chose the same path).
  std::vector<size_t> PathIdx;
};

template <typename RelT>
JsBase<RelT> buildJsBase(const Program &P,
                         std::vector<const ThreadPath *> Chosen) {
  JsBase<RelT> B;
  B.Paths = std::move(Chosen);

  std::vector<Event> Events;
  // One Init event per buffer, carrying any declared initial bytes.
  for (unsigned Buf = 0; Buf < P.bufferSizes().size(); ++Buf) {
    EventId Id = static_cast<EventId>(Events.size());
    if (P.initBytes(Buf).empty())
      Events.push_back(makeInit(Id, P.bufferSizes()[Buf], Buf));
    else
      Events.push_back(makeInit(Id, P.initBytes(Buf), Buf));
  }
  // Thread events, in path order.
  std::vector<std::vector<EventId>> ThreadEvents(P.numThreads());
  for (unsigned T = 0; T < B.Paths.size(); ++T) {
    for (const Instr *I : B.Paths[T]->Accesses) {
      EventId Id = static_cast<EventId>(Events.size());
      const Acc &A = I->Access;
      Event E;
      switch (I->K) {
      case Instr::Kind::Load:
        E = makeRead(Id, static_cast<int>(T), A.Ord, A.Offset, A.Width,
                     /*Value=*/0, A.TearFree, A.Block);
        B.RegOfEvent[Id] = I->Dst;
        break;
      case Instr::Kind::Store:
        E = makeWrite(Id, static_cast<int>(T), A.Ord, A.Offset, A.Width,
                      I->Value, A.TearFree, A.Block);
        break;
      case Instr::Kind::Rmw:
        E = makeRMW(Id, static_cast<int>(T), A.Offset, A.Width,
                    /*ReadValue=*/0, I->Value, A.Block);
        B.RegOfEvent[Id] = I->Dst;
        break;
      default:
        assert(false && "conditionals never materialise as events");
      }
      Events.push_back(E);
      ThreadEvents[T].push_back(Id);
    }
  }
  B.CE = BasicCandidateExecution<RelT>(std::move(Events));
  for (const std::vector<EventId> &Seq : ThreadEvents)
    for (size_t I = 0; I < Seq.size(); ++I)
      for (size_t J = I + 1; J < Seq.size(); ++J)
        B.CE.Sb.set(Seq[I], Seq[J]);
  for (const Event &E : B.CE.Events)
    if (E.isRead())
      B.Reads.push_back(E.Id);
  return B;
}

/// \returns the writers eligible to justify byte \p Loc of read \p R, in
/// event order (the order the justifier explores them in — work items
/// index into this list).
template <typename RelT>
unsigned countJsWriters(const BasicCandidateExecution<RelT> &CE, EventId R,
                        unsigned Loc) {
  unsigned Count = 0;
  for (const Event &W : CE.Events)
    if (W.Id != R && W.Block == CE.Events[R].Block && W.writesByte(Loc))
      ++Count;
  return Count;
}

/// Builds the static writer-allow mask of one JS base from the value
/// analysis: a writer is masked off when it falls outside the read's
/// may-rf candidate set, or when its written byte contradicts one of the
/// path's MustEqual constraints on the read's register (any such
/// justification is cut by constraintsAllow the moment the read
/// completes, so skipping it up front loses nothing — not even a counted
/// candidate). Event-to-access mapping replays buildJsBase's event order:
/// one Init per buffer, then each thread's path accesses in sequence.
template <typename RelT>
StaticAllowMask buildJsStaticAllow(const analysis::StaticValues &SV,
                                   const JsBase<RelT> &B) {
  std::vector<int> AccOf(B.CE.Events.size(), -1);
  size_t Pos = 0;
  while (Pos < B.CE.Events.size() && B.CE.Events[Pos].Ord == Mode::Init)
    ++Pos;
  for (unsigned T = 0; T < B.Paths.size(); ++T)
    for (const Instr *I : B.Paths[T]->Accesses)
      AccOf[Pos++] = static_cast<int>(SV.AccessOfInstr.at(I));
  assert(Pos == B.CE.Events.size() && "event/access replay out of sync");

  StaticAllowMask Allow(B.Reads.size());
  for (size_t RI = 0; RI < B.Reads.size(); ++RI) {
    const Event &R = B.CE.Events[B.Reads[RI]];
    const analysis::ReadMayRf *MR =
        SV.readMayRf(static_cast<unsigned>(AccOf[R.Id]));
    assert(MR && "read event mapped to a non-read access");

    // Per-byte required values from the path's MustEqual constraints on
    // the read's register; Impossible when the constraints conflict or a
    // required value does not fit the read's width.
    unsigned Width = R.readEnd() - R.readBegin();
    unsigned Reg = B.RegOfEvent.at(R.Id);
    std::vector<int> Req(Width, -1);
    bool Impossible = false;
    for (const RegConstraint &Ct : B.Paths[R.Thread]->Constraints) {
      if (!Ct.MustEqual || Ct.Reg != Reg)
        continue;
      if (Width < 8 && (Ct.Value >> (8 * Width)) != 0) {
        Impossible = true;
        break;
      }
      for (unsigned K = 0; K < Width; ++K) {
        int Byte = static_cast<uint8_t>(Ct.Value >> (8 * K));
        if (Req[K] >= 0 && Req[K] != Byte) {
          Impossible = true;
          break;
        }
        Req[K] = Byte;
      }
      if (Impossible)
        break;
    }

    Allow[RI].resize(Width);
    for (unsigned Loc = R.readBegin(); Loc < R.readEnd(); ++Loc) {
      unsigned K = Loc - R.readBegin();
      const analysis::MayRfByte &MB = MR->Bytes[K];
      std::vector<uint8_t> &Mask = Allow[RI][K];
      for (const Event &W : B.CE.Events) {
        if (W.Id == R.Id || W.Block != R.Block || !W.writesByte(Loc))
          continue;
        bool Ok = !Impossible;
        if (Ok) {
          if (W.Ord == Mode::Init)
            Ok = MB.Init;
          else
            Ok = std::binary_search(MB.Writers.begin(), MB.Writers.end(),
                                    static_cast<unsigned>(AccOf[W.Id]));
        }
        if (Ok && Req[K] >= 0 && W.writtenByteAt(Loc) != Req[K])
          Ok = false;
        Mask.push_back(Ok ? 1 : 0);
      }
    }
  }
  return Allow;
}

/// Recursive reads-byte-from justification of a JS base, byte by byte,
/// with register-constraint pruning (always), model-admission pruning
/// (when a model is supplied), and equivalence sleep sets (when a
/// reduction context is supplied).
template <typename RelT> class JsJustifier {
  using ExecT = BasicCandidateExecution<RelT>;

public:
  JsJustifier(JsBase<RelT> &B, const JsModel *Prune, uint64_t *PrunedSubtrees,
              int FirstWriterOnly,
              const std::function<bool(const ExecT &, const Outcome &)>
                  &Visit,
              const JsReductionCtx *Red = nullptr,
              uint64_t *SleptBranches = nullptr,
              const StaticAllowMask *StaticAllow = nullptr,
              uint64_t *StaticRfPruned = nullptr)
      : B(B), Prune(Prune), PrunedSubtrees(PrunedSubtrees),
        FirstWriterOnly(FirstWriterOnly), Visit(Visit), Red(Red),
        SleptBranches(SleptBranches), StaticAllow(StaticAllow),
        StaticRfPruned(StaticRfPruned) {
    if (Red) {
      B.CE.Rbf.clear();
      setupTwins();
      setupRfKeys();
    }
  }

  /// \returns false if the visitor stopped the enumeration.
  bool run() {
    B.CE.Rbf.clear();
    return justifyRead(0);
  }

private:
  //===--------------------------------------------------------------------===//
  // Sleep-set precomputation (per base)
  //===--------------------------------------------------------------------===//

  /// Twin links for the exact symmetry classes: TwinPrev[Id] is the event
  /// at the same body position in the previous class member that chose the
  /// same control-flow path, or -1. Exact twins have byte-identical
  /// attributes, so swapping their two threads wholesale is an
  /// automorphism of the base.
  void setupTwins() {
    const ThreadSymmetry &Sym = Red->Sym;
    TwinPrev.assign(B.CE.numEvents(), -1);
    TwinThreadOf.assign(B.CE.numEvents(), -1);
    ThreadRefs.assign(B.Paths.size(), 0);
    if (Sym.empty() || B.PathIdx.empty())
      return;
    std::vector<std::vector<EventId>> ThreadEvents(B.Paths.size());
    for (const Event &E : B.CE.Events)
      if (E.Ord != Mode::Init)
        ThreadEvents[E.Thread].push_back(E.Id);
    for (size_t Ci = 0; Ci < Sym.Classes.size(); ++Ci) {
      if (!Sym.Exact[Ci])
        continue;
      const std::vector<unsigned> &Cls = Sym.Classes[Ci];
      for (size_t K = 1; K < Cls.size(); ++K) {
        unsigned T1 = Cls[K - 1], T2 = Cls[K];
        if (B.PathIdx[T1] != B.PathIdx[T2])
          continue; // different paths: no positional twin pairing
        assert(ThreadEvents[T1].size() == ThreadEvents[T2].size());
        for (size_t I = 0; I < ThreadEvents[T2].size(); ++I) {
          TwinPrev[ThreadEvents[T2][I]] =
              static_cast<int>(ThreadEvents[T1][I]);
          TwinThreadOf[ThreadEvents[T2][I]] = static_cast<int>(T1);
        }
      }
    }
  }

  /// rf sleep-set keys: two writer choices for the same read byte are
  /// interchangeable when every input the model's verdict can depend on is
  /// equal. The derived hb is static — equal for every rbf choice — iff sw
  /// is forced empty, i.e. there is no SeqCst event at all (sw requires a
  /// SeqCst reader; RMWs are SeqCst by construction) and asw is empty.
  /// Under that precondition every SC rule is vacuous (each needs an sw
  /// pair or a SeqCst intervening event) and the solver's tot problem
  /// carries no constraints, so a candidate's verdict is a function of,
  /// per rbf edge: the byte value read, the static hb(R,W) bit (HBC2), the
  /// static "newer write hb-between" bit (HBC3), and the writer's
  /// contribution to the tear-free count. Writers agreeing on all four are
  /// keyed together and only the first is explored — the skipped subtrees
  /// produce byte-identical candidates, verdicts, and outcomes.
  void setupRfKeys() {
    KeysActive = B.CE.Asw.empty();
    for (const Event &E : B.CE.Events)
      if (E.Ord == Mode::SeqCst)
        KeysActive = false;
    if (!KeysActive)
      return;
    RelT Hb = B.CE.happensBefore(Red->Spec.Sw); // rbf is empty: static hb

    Explore.resize(B.Reads.size());
    for (size_t RI = 0; RI < B.Reads.size(); ++RI) {
      const Event &R = B.CE.Events[B.Reads[RI]];

      // The writers the tear-free rule would count for R, over all byte
      // choices: tear-free writers of the exact range (plus Init under the
      // Strong rule). With at most one such writer the rule cannot fail,
      // so tearing does not discriminate writers for this read.
      auto TearCounts = [&](const Event &W) {
        if (!R.TearFree || !W.TearFree)
          return false;
        return sameWriteReadRange(W, R) ||
               (Red->Spec.Tear == TearRuleKind::Strong &&
                W.Ord == Mode::Init);
      };
      unsigned CountingWriters = 0;
      for (const Event &W : B.CE.Events)
        if (W.Id != R.Id && W.Block == R.Block && TearCounts(W) &&
            W.writeBegin() < R.readEnd() && R.readBegin() < W.writeEnd())
          ++CountingWriters;
      bool TearDiscriminates = CountingWriters > 1;

      Explore[RI].resize(R.readEnd() - R.readBegin());
      for (unsigned Loc = R.readBegin(); Loc < R.readEnd(); ++Loc) {
        struct Key {
          uint8_t Val;
          bool Hbc2, Hbc3;
          unsigned TearK;
          bool operator==(const Key &O) const {
            return Val == O.Val && Hbc2 == O.Hbc2 && Hbc3 == O.Hbc3 &&
                   TearK == O.TearK;
          }
        };
        std::vector<Key> Keys;
        std::vector<uint8_t> &Mask = Explore[RI][Loc - R.readBegin()];
        for (const Event &W : B.CE.Events) {
          if (W.Id == R.Id || W.Block != R.Block || !W.writesByte(Loc))
            continue;
          Key K;
          K.Val = W.writtenByteAt(Loc);
          K.Hbc2 = Hb.get(R.Id, W.Id);
          // HBC3 mirrors checkHbConsistency3 exactly, including its
          // block-agnostic writesByte scan.
          K.Hbc3 = false;
          for (const Event &C : B.CE.Events)
            if (Hb.get(W.Id, C.Id) && Hb.get(C.Id, R.Id) &&
                C.writesByte(Loc)) {
              K.Hbc3 = true;
              break;
            }
          K.TearK =
              (TearDiscriminates && TearCounts(W)) ? W.Id + 1 : 0;
          bool Fresh =
              std::find(Keys.begin(), Keys.end(), K) == Keys.end();
          Keys.push_back(K);
          Mask.push_back(Fresh ? 1 : 0);
        }
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Enumeration
  //===--------------------------------------------------------------------===//

  bool justifyRead(size_t ReadIdx) {
    if (ReadIdx == B.Reads.size())
      return emit();
    return justifyByte(ReadIdx, B.CE.Events[B.Reads[ReadIdx]].readBegin());
  }

  /// \returns true if the subtree choosing \p W for the current byte is
  /// asleep: W is the positional twin of an as-yet unreferenced exact
  /// class member's writer (same attributes, swappable threads), and the
  /// reading thread is outside the pair, so the explored sibling's
  /// subtree is isomorphic and the orbit closure recovers its outcomes.
  bool twinAsleep(const Event &W, const Event &R) const {
    int Prev = TwinPrev[W.Id];
    if (Prev < 0)
      return false;
    int T1 = TwinThreadOf[W.Id], T2 = W.Thread;
    if (R.Thread == T1 || R.Thread == T2)
      return false;
    return ThreadRefs[T1] == 0 && ThreadRefs[T2] == 0;
  }

  void retain(const Event &E) {
    if (E.Thread >= 0)
      ++ThreadRefs[E.Thread];
  }
  void release(const Event &E) {
    if (E.Thread >= 0)
      --ThreadRefs[E.Thread];
  }

  bool justifyByte(size_t ReadIdx, unsigned Loc) {
    Event &R = B.CE.Events[B.Reads[ReadIdx]];
    if (Loc == R.readEnd()) {
      // The read's value is complete; prune against the path constraints,
      // then against the model's tot-independent axioms (monotone in the
      // justified prefix, so the whole subtree dies with it).
      auto RegIt = B.RegOfEvent.find(R.Id);
      assert(RegIt != B.RegOfEvent.end() && "read event without a register");
      uint64_t Value = valueOfBytes(R.ReadBytes);
      if (!constraintsAllow(*B.Paths[R.Thread], RegIt->second, Value))
        return true;
      if (Prune && ReadIdx + 1 < B.Reads.size() &&
          !Prune->admitsPartial(B.CE)) {
        if (PrunedSubtrees)
          ++*PrunedSubtrees;
        return true;
      }
      return justifyRead(ReadIdx + 1);
    }
    unsigned WriterPos = 0;
    for (const Event &W : B.CE.Events) {
      if (W.Id == R.Id || W.Block != R.Block || !W.writesByte(Loc))
        continue;
      unsigned ThisPos = WriterPos++;
      if (FirstWriterOnly >= 0 && ReadIdx == 0 && Loc == R.readBegin() &&
          ThisPos != static_cast<unsigned>(FirstWriterOnly))
        continue;
      // Static may-rf pruning: writers outside the read's candidate set
      // only produce model-invalid or constraint-refuted candidates
      // (StaticValues' exclusion rules are implied by every backend's
      // validity axioms), so the subtree cannot contribute an outcome.
      // Checked before the sleep sets: an excluded writer's whole rf-key
      // class is excluded with it (the keys subsume the exclusion bits),
      // so sleeping siblings never rely on a skipped representative.
      if (StaticAllow &&
          !(*StaticAllow)[ReadIdx][Loc - R.readBegin()][ThisPos]) {
        if (StaticRfPruned)
          ++*StaticRfPruned;
        continue;
      }
      if (Red) {
        bool Asleep =
            (KeysActive &&
             !Explore[ReadIdx][Loc - R.readBegin()][ThisPos]) ||
            twinAsleep(W, R);
        if (Asleep) {
          if (SleptBranches)
            ++*SleptBranches;
          continue;
        }
      }
      B.CE.Rbf.push_back({Loc, W.Id, R.Id});
      R.ReadBytes[Loc - R.Index] = W.writtenByteAt(Loc);
      if (Red) {
        retain(W);
        retain(R);
      }
      bool Continue = justifyByte(ReadIdx, Loc + 1);
      if (Red) {
        release(W);
        release(R);
      }
      B.CE.Rbf.pop_back();
      if (!Continue)
        return false;
    }
    return true;
  }

  bool emit() {
    Outcome O;
    for (const auto &[Id, Reg] : B.RegOfEvent)
      O.add(B.CE.Events[Id].Thread, Reg,
            valueOfBytes(B.CE.Events[Id].ReadBytes));
    return Visit(B.CE, O);
  }

  JsBase<RelT> &B;
  const JsModel *Prune;
  uint64_t *PrunedSubtrees;
  int FirstWriterOnly;
  const std::function<bool(const ExecT &, const Outcome &)> &Visit;
  const JsReductionCtx *Red;
  uint64_t *SleptBranches;
  const StaticAllowMask *StaticAllow;
  uint64_t *StaticRfPruned;

  // Reduction state (set up iff Red).
  bool KeysActive = false;
  /// [read idx][byte offset][eligible-writer position] -> explore flag.
  std::vector<std::vector<std::vector<uint8_t>>> Explore;
  std::vector<int> TwinPrev;     ///< per event: earlier twin event or -1
  std::vector<int> TwinThreadOf; ///< per event: thread of that twin or -1
  std::vector<unsigned> ThreadRefs; ///< rbf references per thread
};

/// Sequential walk of the whole JS candidate space (canonical
/// representatives only when a reduction context is supplied).
template <typename RelT>
bool walkJs(const Program &P, const JsModel *Prune, uint64_t *PrunedSubtrees,
            const std::function<bool(const BasicCandidateExecution<RelT> &,
                                     const Outcome &)> &Visit,
            const JsReductionCtx *Red = nullptr,
            uint64_t *SleptBranches = nullptr,
            const analysis::StaticValues *SV = nullptr,
            uint64_t *StaticRfPruned = nullptr,
            uint64_t *StaticPathsPruned = nullptr) {
  JsSpace Space(P);
  std::vector<std::vector<uint8_t>> Feasible;
  if (SV)
    Feasible = feasiblePaths(Space, *SV);
  for (size_t C = 0; C < Space.Combos; ++C) {
    if (Red && !canonicalCombo(Space, Red->Sym, C))
      continue;
    if (SV && !comboFeasible(Space, Feasible, C)) {
      if (StaticPathsPruned)
        ++*StaticPathsPruned;
      continue;
    }
    JsBase<RelT> B = buildJsBase<RelT>(P, Space.chosen(C));
    if (Red)
      B.PathIdx = Space.indices(C);
    StaticAllowMask Allow;
    if (SV)
      Allow = buildJsStaticAllow(*SV, B);
    JsJustifier<RelT> J(B, Prune, PrunedSubtrees, /*FirstWriterOnly=*/-1,
                        Visit, Red, SleptBranches, SV ? &Allow : nullptr,
                        StaticRfPruned);
    if (!J.run())
      return false;
  }
  return true;
}

/// The shared JS enumeration core: identical structure for both relation
/// tiers, so the fast path and the dynamic path cannot diverge.
template <typename RelT>
BasicEnumerationResult<RelT>
enumerateJsCore(const Program &P, const JsModel &M, const EngineConfig &Cfg,
                unsigned Threads, EngineStats &Stats,
                const JsReductionCtx *Red = nullptr,
                const analysis::StaticValues *SV = nullptr) {
  using ExecT = BasicCandidateExecution<RelT>;
  using ResultT = BasicEnumerationResult<RelT>;
  const JsModel *Prune = Cfg.Prune ? &M : nullptr;
  JsSpace Space(P);

  auto Accumulate = [&M](ResultT &Into, const ExecT &CE, const Outcome &O) {
    ++Into.CandidatesConsidered;
    if (Into.Allowed.count(O))
      return true; // outcome already justified
    RelT Tot;
    if (M.allows(CE, &Tot)) {
      ++Into.ValidCandidates;
      ExecT Witness = CE;
      Witness.Tot = Tot;
      Into.Allowed.emplace(O, std::move(Witness));
    }
    return true;
  };

  if (Threads <= 1) {
    // Sequential: one shared result, with global outcome deduplication —
    // exactly the seed's behaviour (modulo pruning and reduction).
    ResultT Result;
    Stats.WorkItems = Space.Combos;
    walkJs<RelT>(P, Prune, &Stats.PrunedSubtrees,
                 [&](const ExecT &CE, const Outcome &O) {
                   return Accumulate(Result, CE, O);
                 },
                 Red, &Stats.SleptBranches, SV, &Stats.StaticRfPruned,
                 &Stats.StaticPathsPruned);
    return Result;
  }

  // Sharded: split combinations — and, within each, the first read's
  // writer choices — into work items with item-local results, merged in
  // item order for determinism. Under reduction, non-canonical
  // combinations are dropped up front and slept first-writer items simply
  // produce nothing: the sleep rules are a function of the justification
  // stack alone, so sharding cannot change what is explored.
  std::vector<WorkItem> Items;
  std::vector<JsBase<RelT>> Bases;
  std::vector<StaticAllowMask> BaseAllow;
  std::vector<size_t> ComboOfBase(Space.Combos, 0);
  std::vector<std::vector<uint8_t>> Feasible;
  if (SV)
    Feasible = feasiblePaths(Space, *SV);
  for (size_t C = 0; C < Space.Combos; ++C) {
    if (Red && !canonicalCombo(Space, Red->Sym, C))
      continue;
    if (SV && !comboFeasible(Space, Feasible, C)) {
      // Counted here on the building thread, mirroring the sequential
      // walk exactly, so the counter is deterministic across Threads.
      ++Stats.StaticPathsPruned;
      continue;
    }
    ComboOfBase[C] = Bases.size();
    Bases.push_back(buildJsBase<RelT>(P, Space.chosen(C)));
    JsBase<RelT> &B = Bases.back();
    if (Red)
      B.PathIdx = Space.indices(C);
    if (SV)
      BaseAllow.push_back(buildJsStaticAllow(*SV, B));
    if (B.Reads.empty()) {
      Items.push_back({C, -1});
      continue;
    }
    const Event &R0 = B.CE.Events[B.Reads[0]];
    unsigned NW = countJsWriters(B.CE, R0.Id, R0.readBegin());
    for (unsigned K = 0; K < NW; ++K)
      Items.push_back({C, static_cast<int>(K)});
  }
  Stats.WorkItems = Items.size();

  std::vector<ResultT> PerItem(Items.size());
  std::vector<uint64_t> PerItemPruned(Items.size(), 0);
  std::vector<uint64_t> PerItemSlept(Items.size(), 0);
  std::vector<uint64_t> PerItemStatic(Items.size(), 0);
  runSharded(Items.size(), Threads, [&](size_t I) {
    // worker-private copy (the justifier mutates it)
    JsBase<RelT> B = Bases[ComboOfBase[Items[I].Combo]];
    std::function<bool(const ExecT &, const Outcome &)> Into =
        [&](const ExecT &CE, const Outcome &O) {
          return Accumulate(PerItem[I], CE, O);
        };
    JsJustifier<RelT> J(B, Prune, &PerItemPruned[I], Items[I].Writer, Into,
                        Red, &PerItemSlept[I],
                        SV ? &BaseAllow[ComboOfBase[Items[I].Combo]]
                           : nullptr,
                        &PerItemStatic[I]);
    J.run();
  });

  ResultT Result;
  for (size_t I = 0; I < Items.size(); ++I) {
    Result.CandidatesConsidered += PerItem[I].CandidatesConsidered;
    Result.ValidCandidates += PerItem[I].ValidCandidates;
    Stats.PrunedSubtrees += PerItemPruned[I];
    Stats.SleptBranches += PerItemSlept[I];
    Stats.StaticRfPruned += PerItemStatic[I];
    for (auto &[O, Witness] : PerItem[I].Allowed)
      Result.Allowed.emplace(O, std::move(Witness));
  }
  return Result;
}

template <typename ResultT>
OutcomeSummary summarize(const ResultT &R) {
  OutcomeSummary S;
  S.CandidatesConsidered = R.CandidatesConsidered;
  S.ValidCandidates = R.ValidCandidates;
  S.Allowed.reserve(R.Allowed.size());
  for (const auto &[O, Witness] : R.Allowed) {
    (void)Witness;
    S.Allowed.push_back(O);
  }
  return S;
}

//===----------------------------------------------------------------------===//
// ARMv8 candidate space
//===----------------------------------------------------------------------===//

struct ArmSpace {
  std::vector<std::vector<ArmThreadPath>> PerThread;
  size_t Combos = 1;

  explicit ArmSpace(const ArmProgram &P) {
    for (unsigned T = 0; T < P.numThreads(); ++T)
      PerThread.push_back(enumerateArmPaths(P.threadBody(T)));
    for (const std::vector<ArmThreadPath> &Paths : PerThread)
      Combos *= Paths.size();
  }

  std::vector<const ArmThreadPath *> chosen(size_t Idx) const {
    std::vector<const ArmThreadPath *> C(PerThread.size());
    for (size_t T = PerThread.size(); T-- > 0;) {
      C[T] = &PerThread[T][Idx % PerThread[T].size()];
      Idx /= PerThread[T].size();
    }
    return C;
  }
};

/// Materialises the skeleton for one choice of paths.
ArmSkeleton buildArmSkeleton(const ArmProgram &P,
                             std::vector<const ArmThreadPath *> Chosen) {
  ArmSkeleton S;
  S.Paths = std::move(Chosen);

  struct DepFixup {
    EventId Ev;
    int AddrReg, DataReg;
    uint64_t CtrlRegs;
    int RmwTag;
    bool IsLoad;
  };
  std::vector<ArmEvent> Events;
  for (unsigned B = 0; B < P.bufferSizes().size(); ++B)
    Events.push_back(makeArmInit(static_cast<EventId>(Events.size()),
                                 P.bufferSizes()[B], B));
  std::vector<std::vector<EventId>> ThreadEvents(P.numThreads());
  std::vector<DepFixup> Fixups;
  for (unsigned T = 0; T < S.Paths.size(); ++T) {
    for (const ArmPathElem &Elem : S.Paths[T]->Elems) {
      const ArmInstr &I = *Elem.I;
      EventId Id = static_cast<EventId>(Events.size());
      ArmEvent E;
      switch (I.K) {
      case ArmInstr::Kind::Load:
        E = makeArmRead(Id, static_cast<int>(T), I.Offset, I.Width,
                        I.Acquire, I.Exclusive, I.Block);
        S.RegOfEvent[Id] = I.Dst;
        break;
      case ArmInstr::Kind::Store:
        E = makeArmWrite(Id, static_cast<int>(T), I.Offset, I.Width, I.Value,
                         I.Release, I.Exclusive, I.Block);
        break;
      case ArmInstr::Kind::DmbFull:
      case ArmInstr::Kind::DmbLd:
      case ArmInstr::Kind::DmbSt:
      case ArmInstr::Kind::Isb:
        E = makeArmFence(Id, static_cast<int>(T),
                         I.K == ArmInstr::Kind::DmbFull ? ArmKind::DmbFull
                         : I.K == ArmInstr::Kind::DmbLd ? ArmKind::DmbLd
                         : I.K == ArmInstr::Kind::DmbSt ? ArmKind::DmbSt
                                                        : ArmKind::Isb);
        break;
      case ArmInstr::Kind::IfEq:
      case ArmInstr::Kind::IfNe:
        continue; // branches do not materialise as events
      }
      E.SourceTag = I.SourceTag;
      uint64_t CtrlRegs = Elem.CtrlRegs;
      if (I.CtrlDepOn >= 0)
        CtrlRegs |= uint64_t(1) << static_cast<unsigned>(I.CtrlDepOn);
      Fixups.push_back({Id, I.AddrDepOn, I.DataDepOn, CtrlRegs, I.RmwTag,
                        I.K == ArmInstr::Kind::Load});
      Events.push_back(E);
      ThreadEvents[T].push_back(Id);
    }
  }

  S.Exec = ArmExecution(std::move(Events));
  ArmExecution &X = S.Exec;
  for (const std::vector<EventId> &Seq : ThreadEvents)
    for (size_t I = 0; I < Seq.size(); ++I)
      for (size_t J = I + 1; J < Seq.size(); ++J)
        X.Po.set(Seq[I], Seq[J]);

  // Wire register-carried dependencies. The provider of a register is the
  // po-latest load writing it before the consumer.
  auto ProviderOf = [&](const DepFixup &F, unsigned Reg) -> int {
    int Provider = -1;
    for (const auto &[Ev, R] : S.RegOfEvent)
      if (R == Reg && X.Events[Ev].Thread == X.Events[F.Ev].Thread &&
          X.Po.get(Ev, F.Ev))
        Provider = std::max(Provider, static_cast<int>(Ev));
    return Provider;
  };
  for (const DepFixup &F : Fixups) {
    if (F.AddrReg >= 0) {
      int Prov = ProviderOf(F, static_cast<unsigned>(F.AddrReg));
      if (Prov >= 0)
        X.AddrDep.set(static_cast<unsigned>(Prov), F.Ev);
    }
    if (F.DataReg >= 0) {
      int Prov = ProviderOf(F, static_cast<unsigned>(F.DataReg));
      if (Prov >= 0)
        X.DataDep.set(static_cast<unsigned>(Prov), F.Ev);
    }
    uint64_t Ctrl = F.CtrlRegs;
    while (Ctrl) {
      unsigned Reg = static_cast<unsigned>(__builtin_ctzll(Ctrl));
      Ctrl &= Ctrl - 1;
      int Prov = ProviderOf(F, Reg);
      if (Prov >= 0)
        X.CtrlDep.set(static_cast<unsigned>(Prov), F.Ev);
    }
  }
  // Exclusive pairs: a load and the po-next store sharing its RmwTag.
  for (const DepFixup &FL : Fixups) {
    if (!FL.IsLoad || FL.RmwTag < 0)
      continue;
    for (const DepFixup &FS : Fixups) {
      if (FS.IsLoad || FS.RmwTag != FL.RmwTag)
        continue;
      if (X.Events[FS.Ev].Thread == X.Events[FL.Ev].Thread &&
          X.Po.get(FL.Ev, FS.Ev))
        X.Rmw.set(FL.Ev, FS.Ev);
    }
  }
  return S;
}

unsigned countArmWriters(const ArmExecution &X, EventId R, unsigned Loc) {
  unsigned Count = 0;
  for (const ArmEvent &W : X.Events)
    if (W.isWrite() && W.Id != R && W.Block == X.Events[R].Block &&
        W.touchesByte(Loc))
      ++Count;
  return Count;
}

/// Enumerates rbf justifications and coherence orders on top of an ARM
/// skeleton.
class ArmJustifier {
public:
  ArmJustifier(const ArmSkeleton &S, int FirstWriterOnly,
               const std::function<bool(const ArmExecution &,
                                        const Outcome &)> &Visit)
      : S(S), X(S.Exec), FirstWriterOnly(FirstWriterOnly), Visit(Visit) {
    for (const ArmEvent &E : X.Events)
      if (E.isRead())
        Reads.push_back(E.Id);
  }

  bool run() { return justifyRead(0); }

private:
  bool justifyRead(size_t ReadIdx) {
    if (ReadIdx == Reads.size())
      return chooseCoherence();
    return justifyByte(ReadIdx, X.Events[Reads[ReadIdx]].begin());
  }

  bool justifyByte(size_t ReadIdx, unsigned Loc) {
    ArmEvent &R = X.Events[Reads[ReadIdx]];
    if (Loc == R.end()) {
      auto RegIt = S.RegOfEvent.find(R.Id);
      assert(RegIt != S.RegOfEvent.end() && "read event without a register");
      uint64_t Value = valueOfBytes(R.Bytes);
      if (!armConstraintsAllow(*S.Paths[R.Thread], RegIt->second, Value))
        return true;
      return justifyRead(ReadIdx + 1);
    }
    unsigned WriterPos = 0;
    for (const ArmEvent &W : X.Events) {
      if (!W.isWrite() || W.Id == R.Id || W.Block != R.Block ||
          !W.touchesByte(Loc))
        continue;
      unsigned ThisPos = WriterPos++;
      if (FirstWriterOnly >= 0 && ReadIdx == 0 && Loc == R.begin() &&
          ThisPos != static_cast<unsigned>(FirstWriterOnly))
        continue;
      X.Rbf.push_back({Loc, W.Id, R.Id});
      R.Bytes[Loc - R.Index] = W.byteAt(Loc);
      bool Continue = justifyByte(ReadIdx, Loc + 1);
      X.Rbf.pop_back();
      if (!Continue)
        return false;
    }
    return true;
  }

  bool chooseCoherence() {
    X.Co = X.computeGranules();
    return forEachCoherenceCompletion(X, [this] { return emit(); });
  }

  bool emit() {
    Outcome O;
    for (const auto &[Id, Reg] : S.RegOfEvent)
      O.add(X.Events[Id].Thread, Reg, valueOfBytes(X.Events[Id].Bytes));
    return Visit(X, O);
  }

  const ArmSkeleton &S;
  ArmExecution X;
  std::vector<EventId> Reads;
  int FirstWriterOnly;
  const std::function<bool(const ArmExecution &, const Outcome &)> &Visit;
};

//===----------------------------------------------------------------------===//
// Target-architecture candidate space
//===----------------------------------------------------------------------===//

/// The materialised base of a compiled target program. Target programs are
/// straight-line (the §6.3 fragment), so there is exactly one control-flow
/// combination; the candidate space is rf justifications × per-location
/// coherence orders. Generic over the relation tier.
template <typename RelT> struct TargetBase {
  BasicTargetExecution<RelT> X;
  std::vector<EventId> Reads;
  std::map<EventId, unsigned> RegOfEvent;
};

template <typename RelT>
TargetBase<RelT> buildTargetBase(const CompiledTarget &CT) {
  TargetBase<RelT> B;
  std::vector<TargetEvent> Events;
  for (unsigned L = 0; L < CT.NumLocs; ++L) {
    TargetEvent Init;
    Init.Id = static_cast<EventId>(Events.size());
    Init.Thread = -1;
    Init.Kind = TKind::Write;
    Init.Loc = L;
    Init.WriteVal = 0;
    Init.IsInit = true;
    Events.push_back(Init);
  }
  std::vector<std::vector<EventId>> ThreadEvents(CT.Threads.size());
  for (unsigned T = 0; T < CT.Threads.size(); ++T) {
    for (const TargetInstr &I : CT.Threads[T]) {
      TargetEvent E;
      E.Id = static_cast<EventId>(Events.size());
      E.Thread = static_cast<int>(T);
      E.Kind = I.Kind;
      E.Loc = I.Loc;
      E.WriteVal = I.Value;
      E.Acq = I.Acq;
      E.Rel = I.Rel;
      E.Sc = I.Sc;
      E.Fence = I.Fence;
      E.SourceIdx = I.SourceIdx;
      if (E.isRead())
        B.RegOfEvent[E.Id] = I.DstReg;
      Events.push_back(E);
      ThreadEvents[T].push_back(E.Id);
    }
  }
  B.X = BasicTargetExecution<RelT>(std::move(Events), CT.NumLocs);
  for (const std::vector<EventId> &Seq : ThreadEvents)
    for (size_t I = 0; I < Seq.size(); ++I)
      for (size_t J = I + 1; J < Seq.size(); ++J)
        B.X.Po.set(Seq[I], Seq[J]);
  for (const TargetEvent &E : B.X.Events)
    if (E.isRead())
      B.Reads.push_back(E.Id);
  return B;
}

template <typename RelT>
unsigned countTargetWriters(const BasicTargetExecution<RelT> &X, EventId R) {
  unsigned Count = 0;
  for (const TargetEvent &W : X.Events)
    if (W.isWrite() && W.Id != R && W.Loc == X.Events[R].Loc)
      ++Count;
  return Count;
}

/// The target flavour of the static writer-allow mask: [read idx]
/// [eligible-writer position] (cells are width-1, so no byte axis). The
/// event-to-access mapping replays buildTargetBase's order: one init
/// event per location, then every thread's instructions in sequence
/// (fences included in the numbering, mapped to -1 by the analysis).
/// The exclusion rules are refuted by per-location coherence on every
/// backend — targetScPerLocation on five of them, and ImmLite's
/// COHERENCE axiom (Hb;Eco irreflexive, init first in co) independently.
template <typename RelT>
std::vector<std::vector<uint8_t>>
buildTargetStaticAllow(const analysis::StaticValues &SV,
                       const TargetBase<RelT> &B, const CompiledTarget &CT) {
  std::vector<int> AccOf(B.X.Events.size(), -1);
  size_t Pos = CT.NumLocs; // init events map to no access
  for (unsigned T = 0; T < CT.Threads.size(); ++T)
    for (unsigned I = 0; I < CT.Threads[T].size(); ++I)
      AccOf[Pos++] = SV.AccessOfTargetInstr[T][I];
  assert(Pos == B.X.Events.size() && "event/access replay out of sync");

  std::vector<std::vector<uint8_t>> Allow(B.Reads.size());
  for (size_t RI = 0; RI < B.Reads.size(); ++RI) {
    EventId R = B.Reads[RI];
    const analysis::ReadMayRf *MR =
        SV.readMayRf(static_cast<unsigned>(AccOf[R]));
    assert(MR && "read event mapped to a non-read access");
    const analysis::MayRfByte &MB = MR->Bytes[0];
    for (const TargetEvent &W : B.X.Events) {
      if (!W.isWrite() || W.Id == R || W.Loc != B.X.Events[R].Loc)
        continue;
      bool Ok = W.IsInit
                    ? MB.Init
                    : std::binary_search(MB.Writers.begin(),
                                         MB.Writers.end(),
                                         static_cast<unsigned>(AccOf[W.Id]));
      Allow[RI].push_back(Ok ? 1 : 0);
    }
  }
  return Allow;
}

/// Enumerates rf justifications and coherence orders of a target base,
/// pruning rf subtrees via the backend's monotone admission check and
/// sleeping exact-twin rf choices when a symmetry is supplied. Only the
/// twin rule applies at this tier: value-keyed rf merging is unsound here
/// because fr and co verdicts depend on the rf writer's identity, not
/// just the value read.
template <typename RelT> class TargetJustifier {
  using ExecT = BasicTargetExecution<RelT>;

public:
  TargetJustifier(TargetBase<RelT> &B, const TargetModel *Prune,
                  uint64_t *PrunedSubtrees, int FirstWriterOnly,
                  const std::function<bool(const ExecT &, const Outcome &)>
                      &Visit,
                  const ThreadSymmetry *Sym = nullptr,
                  uint64_t *SleptBranches = nullptr,
                  const std::vector<std::vector<uint8_t>> *StaticAllow =
                      nullptr,
                  uint64_t *StaticRfPruned = nullptr)
      : B(B), Prune(Prune), PrunedSubtrees(PrunedSubtrees),
        FirstWriterOnly(FirstWriterOnly), Visit(Visit),
        SleptBranches(SleptBranches), StaticAllow(StaticAllow),
        StaticRfPruned(StaticRfPruned) {
    if (Sym && !Sym->empty())
      setupTwins(*Sym);
  }

  bool run() { return justify(0); }

private:
  void setupTwins(const ThreadSymmetry &Sym) {
    unsigned NumThreads = 0;
    for (const TargetEvent &E : B.X.Events)
      if (E.Thread >= 0)
        NumThreads = std::max(NumThreads, static_cast<unsigned>(E.Thread) + 1);
    TwinPrev.assign(B.X.Events.size(), -1);
    TwinThreadOf.assign(B.X.Events.size(), -1);
    ThreadRefs.assign(NumThreads, 0);
    Sleeping = true;
    std::vector<std::vector<EventId>> ThreadEvents(NumThreads);
    for (const TargetEvent &E : B.X.Events)
      if (E.Thread >= 0)
        ThreadEvents[E.Thread].push_back(E.Id);
    for (size_t Ci = 0; Ci < Sym.Classes.size(); ++Ci) {
      if (!Sym.Exact[Ci])
        continue;
      const std::vector<unsigned> &Cls = Sym.Classes[Ci];
      for (size_t K = 1; K < Cls.size(); ++K) {
        unsigned T1 = Cls[K - 1], T2 = Cls[K];
        for (size_t I = 0; I < ThreadEvents[T2].size(); ++I) {
          TwinPrev[ThreadEvents[T2][I]] =
              static_cast<int>(ThreadEvents[T1][I]);
          TwinThreadOf[ThreadEvents[T2][I]] = static_cast<int>(T1);
        }
      }
    }
  }

  bool twinAsleep(const TargetEvent &W, const TargetEvent &R) const {
    if (!Sleeping || TwinPrev[W.Id] < 0)
      return false;
    int T1 = TwinThreadOf[W.Id], T2 = W.Thread;
    if (R.Thread == T1 || R.Thread == T2)
      return false;
    return ThreadRefs[T1] == 0 && ThreadRefs[T2] == 0;
  }

  bool justify(size_t ReadIdx) {
    if (ReadIdx == B.Reads.size())
      return chooseCo(0);
    EventId R = B.Reads[ReadIdx];
    unsigned WriterPos = 0;
    for (const TargetEvent &W : B.X.Events) {
      if (!W.isWrite() || W.Id == R || W.Loc != B.X.Events[R].Loc)
        continue;
      unsigned ThisPos = WriterPos++;
      if (FirstWriterOnly >= 0 && ReadIdx == 0 &&
          ThisPos != static_cast<unsigned>(FirstWriterOnly))
        continue;
      // Static may-rf pruning; see JsJustifier — the excluded writers are
      // same-thread-as-reader or shadowed-init choices, which the twin
      // sleep rule never sleeps, so the two filters cannot interact.
      if (StaticAllow && !(*StaticAllow)[ReadIdx][ThisPos]) {
        if (StaticRfPruned)
          ++*StaticRfPruned;
        continue;
      }
      if (twinAsleep(W, B.X.Events[R])) {
        if (SleptBranches)
          ++*SleptBranches;
        continue;
      }
      B.X.Rf.set(W.Id, R);
      B.X.Events[R].ReadVal = W.WriteVal;
      if (Sleeping) {
        if (W.Thread >= 0)
          ++ThreadRefs[W.Thread];
        if (B.X.Events[R].Thread >= 0)
          ++ThreadRefs[B.X.Events[R].Thread];
      }
      bool Continue = true;
      if (Prune && !Prune->admitsPartial(B.X)) {
        if (PrunedSubtrees)
          ++*PrunedSubtrees;
      } else {
        Continue = justify(ReadIdx + 1);
      }
      if (Sleeping) {
        if (W.Thread >= 0)
          --ThreadRefs[W.Thread];
        if (B.X.Events[R].Thread >= 0)
          --ThreadRefs[B.X.Events[R].Thread];
      }
      B.X.Rf.clear(W.Id, R);
      if (!Continue)
        return false;
    }
    return true;
  }

  bool chooseCo(unsigned Loc) {
    if (Loc == B.X.CoPerLoc.size())
      return emit();
    std::vector<EventId> Writers;
    EventId Init = ~0u;
    for (const TargetEvent &E : B.X.Events) {
      if (!E.isWrite() || E.Loc != Loc)
        continue;
      if (E.IsInit)
        Init = E.Id;
      else
        Writers.push_back(E.Id);
    }
    std::sort(Writers.begin(), Writers.end());
    do {
      B.X.CoPerLoc[Loc].clear();
      if (Init != ~0u)
        B.X.CoPerLoc[Loc].push_back(Init);
      for (EventId W : Writers)
        B.X.CoPerLoc[Loc].push_back(W);
      if (!chooseCo(Loc + 1))
        return false;
    } while (std::next_permutation(Writers.begin(), Writers.end()));
    B.X.CoPerLoc[Loc].clear();
    return true;
  }

  bool emit() {
    Outcome O;
    for (const auto &[Id, Reg] : B.RegOfEvent)
      O.add(B.X.Events[Id].Thread, Reg, B.X.Events[Id].ReadVal);
    return Visit(B.X, O);
  }

  TargetBase<RelT> &B;
  const TargetModel *Prune;
  uint64_t *PrunedSubtrees;
  int FirstWriterOnly;
  const std::function<bool(const ExecT &, const Outcome &)> &Visit;
  uint64_t *SleptBranches;
  const std::vector<std::vector<uint8_t>> *StaticAllow;
  uint64_t *StaticRfPruned;

  // Twin sleep-set state (set up iff a non-empty symmetry was supplied).
  bool Sleeping = false;
  std::vector<int> TwinPrev;     ///< per event: earlier twin event or -1
  std::vector<int> TwinThreadOf; ///< per event: thread of that twin or -1
  std::vector<unsigned> ThreadRefs; ///< rf references per thread
};

/// The shared target enumeration core for both relation tiers.
template <typename RelT>
BasicTargetEnumerationResult<RelT>
enumerateTargetCore(const CompiledTarget &CT, const TargetModel &M,
                    const EngineConfig &Cfg, unsigned Threads,
                    EngineStats &Stats,
                    const ThreadSymmetry *Sym = nullptr,
                    const analysis::StaticValues *SV = nullptr) {
  using ExecT = BasicTargetExecution<RelT>;
  using ResultT = BasicTargetEnumerationResult<RelT>;
  const TargetModel *Prune = Cfg.Prune ? &M : nullptr;

  auto Accumulate = [&M](ResultT &Into, const ExecT &X, const Outcome &O) {
    ++Into.CandidatesConsidered;
    if (Into.Allowed.count(O))
      return true; // outcome already witnessed
    if (M.allows(X)) {
      ++Into.ConsistentCandidates;
      Into.Allowed.emplace(O, X);
    }
    return true;
  };

  TargetBase<RelT> Base = buildTargetBase<RelT>(CT);
  std::vector<std::vector<uint8_t>> Allow;
  if (SV)
    Allow = buildTargetStaticAllow(*SV, Base, CT);
  unsigned FirstWriters =
      Base.Reads.empty() ? 0 : countTargetWriters(Base.X, Base.Reads[0]);
  if (Threads <= 1 || FirstWriters <= 1) {
    ResultT Result;
    Stats.WorkItems = 1;
    std::function<bool(const ExecT &, const Outcome &)> Into =
        [&](const ExecT &X, const Outcome &O) {
          return Accumulate(Result, X, O);
        };
    TargetJustifier<RelT> J(Base, Prune, &Stats.PrunedSubtrees,
                            /*FirstWriterOnly=*/-1, Into, Sym,
                            &Stats.SleptBranches, SV ? &Allow : nullptr,
                            &Stats.StaticRfPruned);
    J.run();
    return Result;
  }

  // Sharded: the single straight-line combination splits across the first
  // read's writer choices; item-local results merge in item order. Slept
  // first-writer items produce nothing — the sleep rule is a function of
  // the justification stack alone, so sharding cannot change coverage.
  Stats.WorkItems = FirstWriters;
  std::vector<ResultT> PerItem(FirstWriters);
  std::vector<uint64_t> PerItemPruned(FirstWriters, 0);
  std::vector<uint64_t> PerItemSlept(FirstWriters, 0);
  std::vector<uint64_t> PerItemStatic(FirstWriters, 0);
  runSharded(FirstWriters, Threads, [&](size_t I) {
    TargetBase<RelT> B = Base; // worker-private copy (the justifier mutates it)
    std::function<bool(const ExecT &, const Outcome &)> Into =
        [&](const ExecT &X, const Outcome &O) {
          return Accumulate(PerItem[I], X, O);
        };
    TargetJustifier<RelT> J(B, Prune, &PerItemPruned[I],
                            static_cast<int>(I), Into, Sym,
                            &PerItemSlept[I], SV ? &Allow : nullptr,
                            &PerItemStatic[I]);
    J.run();
  });

  ResultT Result;
  for (size_t I = 0; I < FirstWriters; ++I) {
    Result.CandidatesConsidered += PerItem[I].CandidatesConsidered;
    Result.ConsistentCandidates += PerItem[I].ConsistentCandidates;
    Stats.PrunedSubtrees += PerItemPruned[I];
    Stats.SleptBranches += PerItemSlept[I];
    Stats.StaticRfPruned += PerItemStatic[I];
    for (auto &[O, Witness] : PerItem[I].Allowed)
      Result.Allowed.emplace(O, std::move(Witness));
  }
  return Result;
}

template <typename RelT>
OutcomeSummary summarizeTarget(const BasicTargetEnumerationResult<RelT> &R) {
  OutcomeSummary S;
  S.CandidatesConsidered = R.CandidatesConsidered;
  S.ValidCandidates = R.ConsistentCandidates;
  S.Allowed.reserve(R.Allowed.size());
  for (const auto &[O, Witness] : R.Allowed) {
    (void)Witness;
    S.Allowed.push_back(O);
  }
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// JavaScript entry points
//===----------------------------------------------------------------------===//

bool ExecutionEngine::forEachCandidate(
    const Program &P,
    const std::function<bool(const CandidateExecution &, const Outcome &)>
        &Visit) const {
  checkFixedCapacity(P);
  return walkJs<Relation>(P, /*Prune=*/nullptr, /*PrunedSubtrees=*/nullptr,
                          Visit);
}

bool ExecutionEngine::forEachAdmittedCandidate(
    const Program &P, const JsModel &M,
    const std::function<bool(const CandidateExecution &, const Outcome &)>
        &Visit) const {
  checkFixedCapacity(P);
  EngineStats Local;
  bool Completed = walkJs<Relation>(P, Cfg.Prune ? &M : nullptr,
                                    &Local.PrunedSubtrees, Visit);
  Stats = Local;
  return Completed;
}

EnumerationResult ExecutionEngine::enumerate(const Program &P,
                                             const JsModel &M) const {
  checkFixedCapacity(P);
  EngineStats Local;
  EnumerationResult R =
      enumerateJsCore<Relation>(P, M, Cfg, effectiveThreads(), Local);
  Stats = Local;
  return R;
}

namespace {

/// Emits the tier-select trace event for an enumerateOutcomes door.
void traceTierSelect(const char *Entry, unsigned Events, const char *Tier,
                     SolverKind Solver) {
  obs::TraceSink *T = obs::trace();
  if (!T)
    return;
  JsonValue F = JsonValue::object();
  F.set("entry", JsonValue(Entry));
  F.set("events", JsonValue(static_cast<double>(Events)));
  F.set("tier", JsonValue(Tier));
  F.set("solver", JsonValue(solverKindName(Solver)));
  T->event("tier-select", std::move(F));
}

/// Emits the drf-fastpath trace event: the static certificate served this
/// enumeration with the SC interleaving table.
void traceDrfFastPath(const char *Entry, unsigned Events, uint64_t States,
                      size_t Outcomes) {
  obs::TraceSink *T = obs::trace();
  if (!T)
    return;
  JsonValue F = JsonValue::object();
  F.set("entry", JsonValue(Entry));
  F.set("events", JsonValue(static_cast<double>(Events)));
  F.set("states", JsonValue(static_cast<double>(States)));
  F.set("outcomes", JsonValue(static_cast<double>(Outcomes)));
  T->event("drf-fastpath", std::move(F));
}

/// Emits the static-prune trace event: how much the value-aware static
/// tier cut from this full enumeration (rf writer choices skipped and
/// path combinations dropped).
void traceStaticPrune(const char *Entry, uint64_t RfPruned,
                      uint64_t PathsPruned, uint64_t MayRfExcluded) {
  obs::TraceSink *T = obs::trace();
  if (!T)
    return;
  JsonValue F = JsonValue::object();
  F.set("entry", JsonValue(Entry));
  F.set("rf_pruned", JsonValue(static_cast<double>(RfPruned)));
  F.set("paths_pruned", JsonValue(static_cast<double>(PathsPruned)));
  F.set("may_rf_excluded", JsonValue(static_cast<double>(MayRfExcluded)));
  T->event("static-prune", std::move(F));
}

/// The static DRF-SC fast path shared by both enumerateOutcomes doors:
/// when the precomputed classification certifies DRF, answer with the SC
/// interleaving table under Tier "static". \returns std::nullopt for
/// programs the certificate does not cover (the caller runs the full
/// enumeration, with the same analysis pruning it).
template <typename ProgT>
std::optional<OutcomeSummary>
tryStaticFastPath(const ProgT &P, const analysis::StaticClassification &C,
                  const char *Entry, unsigned Events, SolverKind Kind) {
  if (!C.StaticallyDrf)
    return std::nullopt;
  OutcomeSummary S;
  uint64_t States = 0;
  S.Allowed = analysis::enumerateScOutcomes(P, &States);
  // The SC walk's scheduler states stand in for candidates: both count
  // deterministic exploration effort, and the drf-fastpath win shows up
  // as the drop against the full walk's candidate count.
  S.CandidatesConsidered = States;
  S.ValidCandidates = S.Allowed.size();
  S.Tier = "static";
  S.SolverUsed = Kind;
  traceDrfFastPath(Entry, Events, States, S.Allowed.size());
  if (obs::metricsEnabled())
    obs::registry().counter("engine.drf_fastpath").add(1);
  return S;
}

/// Re-exports an enumeration's effort counters into the obs registry.
/// Every value is a deterministic function of the enumerated space, so
/// all of these land in the golden-comparable Deterministic class.
void recordEngineObs(const EngineStats &St, uint64_t CandidatesConsidered,
                     uint64_t ValidCandidates, const std::string &Tier) {
  if (!obs::metricsEnabled())
    return;
  obs::MetricsRegistry &R = obs::registry();
  R.counter("engine.enumerations").add(1);
  R.counter("engine.work_items").add(St.WorkItems);
  R.counter("engine.pruned_subtrees").add(St.PrunedSubtrees);
  R.counter("engine.slept_branches").add(St.SleptBranches);
  R.counter("engine.candidates_considered").add(CandidatesConsidered);
  R.counter("engine.valid_candidates").add(ValidCandidates);
  R.counter("engine.static_rf_pruned").add(St.StaticRfPruned);
  R.counter("engine.static_paths_pruned").add(St.StaticPathsPruned);
  if (!Tier.empty())
    R.counter("engine.tier." + Tier).add(1);
}

} // namespace

OutcomeSummary ExecutionEngine::enumerateOutcomes(const Program &P,
                                                  const JsModel &M) const {
  checkCapacity(P);
  std::optional<analysis::StaticValues> SV;
  if (Cfg.StaticFastPath) {
    // The fast path sits after the capacity gate (too-large programs keep
    // their typed rejection) and before solver/tier selection (no solver
    // runs on a statically-DRF program). When the DRF certificate does
    // not hold, the same analysis prunes the full walk below.
    SV.emplace(analysis::analyzeValues(P));
    SolverKind Kind = M.solver().Kind.value_or(defaultSolverKind());
    if (std::optional<OutcomeSummary> S = tryStaticFastPath(
            P, SV->C, "js", programEventUpperBound(P), Kind)) {
      Stats = EngineStats();
      recordEngineObs(Stats, S->CandidatesConsidered, S->ValidCandidates,
                      S->Tier);
      return *S;
    }
  }
  // Tier selection for the tot decider: past Cfg.SatThreshold events the
  // order-search solvers give way to the SAT/CDCL tier. Only the solver
  // changes — the spec, and therefore the verdict table, is the model's.
  SolverKind Kind = M.solver().Kind.value_or(defaultSolverKind());
  if (programEventUpperBound(P) > Cfg.SatThreshold &&
      Kind != SolverKind::Sat) {
    if (obs::TraceSink *T = obs::trace()) {
      JsonValue F = JsonValue::object();
      F.set("entry", JsonValue("js"));
      F.set("events",
            JsonValue(static_cast<double>(programEventUpperBound(P))));
      F.set("from", JsonValue(solverKindName(Kind)));
      F.set("to", JsonValue(solverKindName(SolverKind::Sat)));
      T->event("solver-dispatch", std::move(F));
    }
    if (obs::metricsEnabled())
      obs::registry().counter("engine.sat_reroutes").add(1);
    JsModel SatModel(M.spec(), SolverConfig::sat());
    return enumerateOutcomes(P, SatModel);
  }
  bool SmallTier =
      programEventUpperBound(P) <= Relation::MaxSize && !Cfg.ForceDynRelation;
  const char *Tier = SmallTier ? "inline" : "dyn";
  traceTierSelect("js", programEventUpperBound(P), Tier, Kind);
  obs::PhaseTimer Phase("engine.phase.enumerate_us");
  EngineStats Local;
  const analysis::StaticValues *SVP = SV ? &*SV : nullptr;
  if (!Cfg.Reduction) {
    OutcomeSummary S =
        SmallTier ? summarize(enumerateJsCore<Relation>(
                        P, M, Cfg, effectiveThreads(), Local, nullptr, SVP))
                  : summarize(enumerateJsCore<DynRelation>(
                        P, M, Cfg, effectiveThreads(), Local, nullptr, SVP));
    Stats = Local;
    S.Tier = Tier;
    S.SolverUsed = Kind;
    if (SVP)
      traceStaticPrune("js", Local.StaticRfPruned, Local.StaticPathsPruned,
                       SV->MayRfExcluded);
    recordEngineObs(Local, S.CandidatesConsidered, S.ValidCandidates, S.Tier);
    return S;
  }
  // Equivalence-aware enumeration: canonical path combinations, rf sleep
  // sets inside the justifier, and the outcome orbit closure to restore
  // the outcomes of the slept (isomorphic) subtrees.
  JsReductionCtx Red{threadSymmetry(P), M.spec()};
  OutcomeSummary S =
      SmallTier ? summarize(enumerateJsCore<Relation>(
                      P, M, Cfg, effectiveThreads(), Local, &Red, SVP))
                : summarize(enumerateJsCore<DynRelation>(
                      P, M, Cfg, effectiveThreads(), Local, &Red, SVP));
  if (!Red.Sym.empty())
    S.Allowed = closeOutcomes(std::move(S.Allowed), Red.Sym);
  Stats = Local;
  S.Tier = Tier;
  S.SolverUsed = Kind;
  if (SVP)
    traceStaticPrune("js", Local.StaticRfPruned, Local.StaticPathsPruned,
                     SV->MayRfExcluded);
  recordEngineObs(Local, S.CandidatesConsidered, S.ValidCandidates, S.Tier);
  return S;
}

ScDrfReport ExecutionEngine::scDrf(const Program &P, const JsModel &M) const {
  checkFixedCapacity(P);
  EngineStats Local;
  ScDrfReport Report;
  walkJs<Relation>(
      P, Cfg.Prune ? &M : nullptr, &Local.PrunedSubtrees,
      [&](const CandidateExecution &CE, const Outcome &O) {
        (void)O;
        if (!M.allows(CE))
          return true;
        if (Report.DataRaceFree && !isRaceFree(CE, M.spec())) {
          Report.DataRaceFree = false;
          Report.RaceWitness = CE;
        }
        if (Report.AllValidExecutionsSC && !isSequentiallyConsistent(CE)) {
          Report.AllValidExecutionsSC = false;
          Report.NonScWitness = CE;
        }
        // Keep scanning until both facets are resolved.
        return Report.DataRaceFree || Report.AllValidExecutionsSC;
      });
  Stats = Local;
  return Report;
}

//===----------------------------------------------------------------------===//
// ARMv8 entry points
//===----------------------------------------------------------------------===//

bool ExecutionEngine::forEachSkeleton(
    const ArmProgram &P,
    const std::function<bool(const ArmSkeleton &)> &Visit) const {
  checkCapacity(P);
  ArmSpace Space(P);
  for (size_t C = 0; C < Space.Combos; ++C)
    if (!Visit(buildArmSkeleton(P, Space.chosen(C))))
      return false;
  return true;
}

bool ExecutionEngine::forEachArmCandidate(
    const ArmProgram &P,
    const std::function<bool(const ArmExecution &, const Outcome &)> &Visit)
    const {
  return forEachSkeleton(P, [&](const ArmSkeleton &S) {
    ArmJustifier J(S, /*FirstWriterOnly=*/-1, Visit);
    return J.run();
  });
}

ArmEnumerationResult ExecutionEngine::enumerate(const ArmProgram &P,
                                                const Armv8Model &M) const {
  checkCapacity(P);
  EngineStats Local;
  unsigned Threads = effectiveThreads();
  ArmSpace Space(P);

  auto Accumulate = [&M](ArmEnumerationResult &Into, const ArmExecution &X,
                         const Outcome &O) {
    ++Into.CandidatesConsidered;
    if (Into.Allowed.count(O))
      return true;
    if (M.allows(X)) {
      ++Into.ConsistentCandidates;
      Into.Allowed.emplace(O, X);
    }
    return true;
  };

  if (Threads <= 1) {
    ArmEnumerationResult Result;
    Local.WorkItems = Space.Combos;
    forEachArmCandidate(P, [&](const ArmExecution &X, const Outcome &O) {
      return Accumulate(Result, X, O);
    });
    Stats = Local;
    recordEngineObs(Local, Result.CandidatesConsidered,
                    Result.ConsistentCandidates, "inline");
    return Result;
  }

  std::vector<WorkItem> Items;
  std::vector<ArmSkeleton> Skeletons;
  for (size_t C = 0; C < Space.Combos; ++C) {
    Skeletons.push_back(buildArmSkeleton(P, Space.chosen(C)));
    const ArmSkeleton &S = Skeletons.back();
    EventId FirstRead = ~0u;
    for (const ArmEvent &E : S.Exec.Events)
      if (E.isRead()) {
        FirstRead = E.Id;
        break;
      }
    if (FirstRead == ~0u) {
      Items.push_back({C, -1});
      continue;
    }
    unsigned NW = countArmWriters(S.Exec, FirstRead,
                                  S.Exec.Events[FirstRead].begin());
    for (unsigned K = 0; K < NW; ++K)
      Items.push_back({C, static_cast<int>(K)});
  }
  Local.WorkItems = Items.size();

  std::vector<ArmEnumerationResult> PerItem(Items.size());
  runSharded(Items.size(), Threads, [&](size_t I) {
    std::function<bool(const ArmExecution &, const Outcome &)> Into =
        [&](const ArmExecution &X, const Outcome &O) {
          return Accumulate(PerItem[I], X, O);
        };
    ArmJustifier J(Skeletons[Items[I].Combo], Items[I].Writer, Into);
    J.run();
  });

  ArmEnumerationResult Result;
  for (size_t I = 0; I < Items.size(); ++I) {
    Result.CandidatesConsidered += PerItem[I].CandidatesConsidered;
    Result.ConsistentCandidates += PerItem[I].ConsistentCandidates;
    for (auto &[O, Witness] : PerItem[I].Allowed)
      Result.Allowed.emplace(O, std::move(Witness));
  }
  Stats = Local;
  recordEngineObs(Local, Result.CandidatesConsidered,
                  Result.ConsistentCandidates, "inline");
  return Result;
}

//===----------------------------------------------------------------------===//
// Target-architecture entry points
//===----------------------------------------------------------------------===//

bool ExecutionEngine::forEachTargetCandidate(
    const CompiledTarget &CT,
    const std::function<bool(const TargetExecution &, const Outcome &)>
        &Visit) const {
  checkFixedCapacity(CT);
  TargetBase<Relation> B = buildTargetBase<Relation>(CT);
  TargetJustifier<Relation> J(B, /*Prune=*/nullptr,
                              /*PrunedSubtrees=*/nullptr,
                              /*FirstWriterOnly=*/-1, Visit);
  return J.run();
}

bool ExecutionEngine::forEachAdmittedTargetCandidate(
    const CompiledTarget &CT, const TargetModel &M,
    const std::function<bool(const TargetExecution &, const Outcome &)>
        &Visit) const {
  checkFixedCapacity(CT);
  EngineStats Local;
  TargetBase<Relation> B = buildTargetBase<Relation>(CT);
  TargetJustifier<Relation> J(B, Cfg.Prune ? &M : nullptr,
                              &Local.PrunedSubtrees,
                              /*FirstWriterOnly=*/-1, Visit);
  bool Completed = J.run();
  Stats = Local;
  return Completed;
}

TargetEnumerationResult
ExecutionEngine::enumerate(const CompiledTarget &CT,
                           const TargetModel &M) const {
  checkFixedCapacity(CT);
  EngineStats Local;
  TargetEnumerationResult R =
      enumerateTargetCore<Relation>(CT, M, Cfg, effectiveThreads(), Local);
  Stats = Local;
  return R;
}

OutcomeSummary ExecutionEngine::enumerateOutcomes(const CompiledTarget &CT,
                                                  const TargetModel &M) const {
  checkCapacity(CT);
  std::optional<analysis::StaticValues> SV;
  if (Cfg.StaticFastPath) {
    SV.emplace(analysis::analyzeValues(CT));
    if (std::optional<OutcomeSummary> S = tryStaticFastPath(
            CT, SV->C, "target", targetEventBound(CT), defaultSolverKind())) {
      Stats = EngineStats();
      recordEngineObs(Stats, S->CandidatesConsidered, S->ValidCandidates,
                      S->Tier);
      return *S;
    }
  }
  const analysis::StaticValues *SVP = SV ? &*SV : nullptr;
  bool SmallTier =
      targetEventBound(CT) <= Relation::MaxSize && !Cfg.ForceDynRelation;
  const char *Tier = SmallTier ? "inline" : "dyn";
  SolverKind Kind = defaultSolverKind();
  traceTierSelect("target", targetEventBound(CT), Tier, Kind);
  obs::PhaseTimer Phase("engine.phase.enumerate_us");
  EngineStats Local;
  if (!Cfg.Reduction) {
    OutcomeSummary S =
        SmallTier
            ? summarizeTarget(enumerateTargetCore<Relation>(
                  CT, M, Cfg, effectiveThreads(), Local, nullptr, SVP))
            : summarizeTarget(enumerateTargetCore<DynRelation>(
                  CT, M, Cfg, effectiveThreads(), Local, nullptr, SVP));
    Stats = Local;
    S.Tier = Tier;
    S.SolverUsed = Kind;
    if (SVP)
      traceStaticPrune("target", Local.StaticRfPruned,
                       Local.StaticPathsPruned, SV->MayRfExcluded);
    recordEngineObs(Local, S.CandidatesConsidered, S.ValidCandidates, S.Tier);
    return S;
  }
  ThreadSymmetry Sym = threadSymmetry(CT);
  OutcomeSummary S =
      SmallTier ? summarizeTarget(enumerateTargetCore<Relation>(
                      CT, M, Cfg, effectiveThreads(), Local, &Sym, SVP))
                : summarizeTarget(enumerateTargetCore<DynRelation>(
                      CT, M, Cfg, effectiveThreads(), Local, &Sym, SVP));
  if (!Sym.empty())
    S.Allowed = closeOutcomes(std::move(S.Allowed), Sym);
  Stats = Local;
  S.Tier = Tier;
  S.SolverUsed = Kind;
  if (SVP)
    traceStaticPrune("target", Local.StaticRfPruned, Local.StaticPathsPruned,
                     SV->MayRfExcluded);
  recordEngineObs(Local, S.CandidatesConsidered, S.ValidCandidates, S.Tier);
  return S;
}

//===----------------------------------------------------------------------===//
// Skeleton-search support
//===----------------------------------------------------------------------===//

namespace {

bool twinJustify(
    CandidateExecution &Js, ArmExecution &Arm, size_t ReadIdx,
    const std::vector<EventId> &Reads,
    const std::function<bool(const CandidateExecution &, const ArmExecution &)>
        &Visit) {
  if (ReadIdx == Reads.size())
    return Visit(Js, Arm);
  EventId R = Reads[ReadIdx];
  unsigned Loc = Js.Events[R].Index;
  for (const Event &W : Js.Events) {
    if (W.Id == R || !W.writesByte(Loc))
      continue;
    Js.Rbf.push_back({Loc, W.Id, R});
    Arm.Rbf.push_back({Loc, W.Id, R});
    Js.Events[R].ReadBytes[0] = W.writtenByteAt(Loc);
    Arm.Events[R].Bytes[0] = W.writtenByteAt(Loc);
    bool Continue = twinJustify(Js, Arm, ReadIdx + 1, Reads, Visit);
    Js.Rbf.pop_back();
    Arm.Rbf.pop_back();
    if (!Continue)
      return false;
  }
  return true;
}

} // namespace

bool ExecutionEngine::forEachTwinJustification(
    CandidateExecution &Js, ArmExecution &Arm,
    const std::function<bool(const CandidateExecution &, const ArmExecution &)>
        &Visit) {
  std::vector<EventId> Reads;
  for (const Event &E : Js.Events)
    if (E.isRead())
      Reads.push_back(E.Id);
  return twinJustify(Js, Arm, 0, Reads, Visit);
}
