//===- engine/MemoryModel.cpp ---------------------------------------------===//

#include "engine/MemoryModel.h"

#include "solver/ScConstraints.h"

#include <algorithm>
#include <functional>

using namespace jsmm;

namespace {

template <typename RelT>
bool admitsPartialImpl(const BasicCandidateExecution<RelT> &CE,
                       const ModelSpec &Spec) {
  const BasicDerivedTriple<RelT> &D = CE.derived(Spec.Sw);
  // checkTearFreeReads and the hb-consistency checks see only the rf edges
  // of reads justified so far; unjustified reads have empty rf columns and
  // cannot fail them yet.
  if (!checkTotIndependentAxioms(CE, D, Spec))
    return false;
  // HBC1 forces tot ⊇ hb, and hb only grows: a cyclic prefix is dead.
  // (The derived hb is transitively closed: irreflexivity is acyclicity.)
  return D.Hb.isIrreflexive();
}

template <typename RelT>
bool refutableForSomeTotImpl(const BasicCandidateExecution<RelT> &CE,
                             RelT *TotOut, const ModelSpec &Spec,
                             const SolverConfig &Solver) {
  const BasicDerivedTriple<RelT> &D = CE.derived(Spec.Sw);
  if (!D.Hb.isIrreflexive())
    return false; // no well-formed tot exists at all (hb is closed)
  if (!checkTotIndependentAxioms(CE, D, Spec)) {
    if (TotOut)
      *TotOut = totalOrderOver<RelT>(
          lexSmallestExtension<RelT>(D.Hb, CE.allEventsMask()),
          CE.numEvents());
    return true;
  }
  BasicTotProblem<RelT> P = scAtomicsProblem(CE, D, Spec.Sc);
  return totSolver(Solver).existsViolatingExtension(P, TotOut);
}

} // namespace

bool JsModel::admitsPartial(const CandidateExecution &CE) const {
  return admitsPartialImpl(CE, Spec);
}

bool JsModel::admitsPartial(const DynCandidateExecution &CE) const {
  return admitsPartialImpl(CE, Spec);
}

bool JsModel::allows(const CandidateExecution &CE, Relation *TotOut) const {
  return isValidForSomeTot(CE, Spec, TotOut, totSolver(Solver));
}

bool JsModel::allows(const DynCandidateExecution &CE,
                     DynRelation *TotOut) const {
  return isValidForSomeTot(CE, Spec, TotOut, totSolver(Solver));
}

bool JsModel::refutableForSomeTot(const CandidateExecution &CE,
                                  Relation *TotOut) const {
  return refutableForSomeTotImpl(CE, TotOut, Spec, Solver);
}

bool JsModel::refutableForSomeTot(const DynCandidateExecution &CE,
                                  DynRelation *TotOut) const {
  return refutableForSomeTotImpl(CE, TotOut, Spec, Solver);
}

bool Armv8Model::allows(const ArmExecution &X) const {
  return isArmConsistent(X);
}

bool Armv8Model::allowsForSomeCo(const ArmExecution &X,
                                 ArmExecution *Witness) const {
  // The pruned walk refutes whole coherence subtrees on their prefix
  // (every axiom is violation-monotone in co), skipping most of the
  // factorial completion search in the expensive "no coherence works"
  // direction the §5.2 sweep hits millions of times; its visitor sees
  // exactly the consistent completions.
  ArmExecution Work = X;
  Work.Co = Work.computeGranules();
  bool Found = false;
  forEachConsistentCoherenceCompletion(Work, [&] {
    if (Witness)
      *Witness = Work;
    Found = true;
    return false;
  });
  return Found;
}
