//===- engine/MemoryModel.cpp ---------------------------------------------===//

#include "engine/MemoryModel.h"

#include "support/LinearExtensions.h"

#include <algorithm>
#include <functional>

using namespace jsmm;

bool JsModel::admitsPartial(const CandidateExecution &CE) const {
  const DerivedTriple &D = CE.derived(Spec.Sw);
  // checkTearFreeReads and the hb-consistency checks see only the rf edges
  // of reads justified so far; unjustified reads have empty rf columns and
  // cannot fail them yet.
  if (!checkTotIndependentAxioms(CE, D, Spec))
    return false;
  // HBC1 forces tot ⊇ hb, and hb only grows: a cyclic prefix is dead.
  return D.Hb.isAcyclic();
}

bool JsModel::allows(const CandidateExecution &CE, Relation *TotOut) const {
  return isValidForSomeTot(CE, Spec, TotOut);
}

bool JsModel::refutableForSomeTot(const CandidateExecution &CE,
                                  Relation *TotOut) const {
  const DerivedTriple &D = CE.derived(Spec.Sw);
  if (!D.Hb.isAcyclic())
    return false; // no well-formed tot exists at all
  if (!checkTotIndependentAxioms(CE, D, Spec)) {
    if (TotOut)
      *TotOut =
          totalOrderFromSequence(D.Hb.topologicalOrder(), CE.numEvents());
    return true;
  }
  bool Found = false;
  forEachLinearExtension(
      D.Hb, CE.allEventsMask(), [&](const std::vector<unsigned> &Seq) {
        Relation Tot = totalOrderFromSequence(Seq, CE.numEvents());
        if (!checkScAtomics(CE, D, Spec.Sc, Tot)) {
          Found = true;
          if (TotOut)
            *TotOut = Tot;
          return false;
        }
        return true;
      });
  return Found;
}

bool Armv8Model::allows(const ArmExecution &X) const {
  return isArmConsistent(X);
}

bool Armv8Model::allowsForSomeCo(const ArmExecution &X,
                                 ArmExecution *Witness) const {
  ArmExecution Work = X;
  Work.Co = Work.computeGranules();
  bool Found = false;
  forEachCoherenceCompletion(Work, [&] {
    if (!isArmConsistent(Work))
      return true; // keep searching
    if (Witness)
      *Witness = Work;
    Found = true;
    return false;
  });
  return Found;
}
