//===- engine/MemoryModel.h - Pluggable model predicates ------------------===//
///
/// \file
/// The memory-model interface of the unified execution engine. The engine
/// owns the candidate space — control-flow paths × reads-byte-from
/// justifications × orders — and delegates every model question to a
/// MemoryModel implementation:
///
///   - JsModel wraps a core/Validity ModelSpec: tot-independent axioms are
///     exposed as a *monotone* partial-candidate admission check (a
///     violation on a justified prefix survives any extension, so the
///     engine may prune the whole subtree), and full validity as the
///     exists-a-tot decision over linear extensions of hb;
///   - Armv8Model wraps the mixed-size ARMv8 axiomatic model of
///     armv8/ArmModel, both for complete executions (co chosen) and as the
///     exists-a-coherence decision the skeleton search needs.
///
/// The Thm 6.3 target architectures (x86-TSO, uni-size ARMv8, ARMv7,
/// Power, RISC-V, ImmLite) plug in as TargetModel backends — see
/// engine/TargetModel.h. Further backends plug in the same way without
/// touching the enumeration core.
///
//===----------------------------------------------------------------------===//

#ifndef JSMM_ENGINE_MEMORYMODEL_H
#define JSMM_ENGINE_MEMORYMODEL_H

#include "armv8/ArmModel.h"
#include "core/Validity.h"

namespace jsmm {

/// Root of the model hierarchy the engine enumerates against.
class MemoryModel {
public:
  virtual ~MemoryModel() = default;
  /// Human-readable model name (for tables, JSON and CLI echo).
  virtual const char *name() const = 0;
};

/// The JavaScript memory model in one of its ModelSpec variants. The
/// tot-order questions (allows / refutableForSomeTot) are decided by the
/// order solver selected in \p Solver; an unset SolverConfig resolves to
/// the process default (--solver=... in the CLI tools).
class JsModel : public MemoryModel {
public:
  JsModel() : Spec(ModelSpec::revised()) {}
  explicit JsModel(ModelSpec Spec, SolverConfig Solver = SolverConfig())
      : Spec(Spec), Solver(Solver) {}

  const ModelSpec &spec() const { return Spec; }
  const SolverConfig &solver() const { return Solver; }
  const char *name() const override { return Spec.Name; }

  /// Monotone admission of a *partially justified* candidate: every read
  /// that is justified at all is justified completely. \returns false when
  /// no completion of \p CE can be valid — the tot-independent axioms
  /// (HBC2, HBC3, Tear-Free Reads) fail on the prefix, or the prefix hb is
  /// already cyclic (HBC1 requires tot ⊇ hb). Sound because rf, sw and hb
  /// only grow as later reads are justified and a completed read's rf
  /// edges are final. The Dyn overloads answer the same questions for the
  /// dynamic-universe tier the engine uses beyond 64 events.
  bool admitsPartial(const CandidateExecution &CE) const;
  bool admitsPartial(const DynCandidateExecution &CE) const;

  /// Full validity: some strict total order makes \p CE valid. Fills
  /// \p TotOut with the witness when non-null.
  bool allows(const CandidateExecution &CE, Relation *TotOut = nullptr) const;
  bool allows(const DynCandidateExecution &CE,
              DynRelation *TotOut = nullptr) const;

  /// The dual the counter-example search needs: some tot makes \p CE
  /// *invalid*. Fills \p TotOut with the refuting order when non-null.
  bool refutableForSomeTot(const CandidateExecution &CE,
                           Relation *TotOut = nullptr) const;
  bool refutableForSomeTot(const DynCandidateExecution &CE,
                           DynRelation *TotOut = nullptr) const;

private:
  ModelSpec Spec;
  SolverConfig Solver;
};

/// The mixed-size ARMv8 axiomatic model (§4).
class Armv8Model : public MemoryModel {
public:
  const char *name() const override { return "armv8"; }

  /// Consistency of a complete execution (rbf and co chosen).
  bool allows(const ArmExecution &X) const;

  /// \returns true if some granule coherence order makes \p X consistent;
  /// fills \p Witness (complete with co) when non-null.
  bool allowsForSomeCo(const ArmExecution &X,
                       ArmExecution *Witness = nullptr) const;
};

} // namespace jsmm

#endif // JSMM_ENGINE_MEMORYMODEL_H
