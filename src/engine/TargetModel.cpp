//===- engine/TargetModel.cpp ---------------------------------------------===//

#include "engine/TargetModel.h"

using namespace jsmm;

const char *TargetModel::name() const {
  switch (Arch) {
  case TargetArch::X86:
    return "x86-tso";
  case TargetArch::ArmV8:
    return "armv8-uni";
  case TargetArch::ArmV7:
    return "armv7";
  case TargetArch::Power:
    return "power";
  case TargetArch::RiscV:
    return "riscv";
  case TargetArch::ImmLite:
    return "immlite";
  }
  return "?";
}

bool TargetModel::allows(const TargetExecution &X) const {
  return isTargetConsistent(X, Arch);
}

bool TargetModel::allows(const DynTargetExecution &X) const {
  return isTargetConsistent(X, Arch);
}

bool TargetModel::admitsPartial(const TargetExecution &X) const {
  Relation PoLocRf = X.poLoc();
  PoLocRf.unionWith(X.Rf);
  return PoLocRf.isAcyclic();
}

bool TargetModel::admitsPartial(const DynTargetExecution &X) const {
  DynRelation PoLocRf = X.poLoc();
  PoLocRf.unionWith(X.Rf);
  return PoLocRf.isAcyclic();
}

const std::vector<TargetModel> &TargetModel::all() {
  static const std::vector<TargetModel> Models = {
      TargetModel(TargetArch::X86),   TargetModel(TargetArch::ArmV8),
      TargetModel(TargetArch::ArmV7), TargetModel(TargetArch::Power),
      TargetModel(TargetArch::RiscV), TargetModel(TargetArch::ImmLite)};
  return Models;
}

const TargetModel *TargetModel::byName(const std::string &Name) {
  for (const TargetModel &M : all())
    if (Name == M.name())
      return &M;
  return nullptr;
}

