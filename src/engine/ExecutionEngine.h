//===- engine/ExecutionEngine.h - Unified enumeration core ----------------===//
///
/// \file
/// The single pluggable enumeration core behind every frontend. All of the
/// paper's results reduce to the same computational kernel — enumerate
/// candidate executions, derive relations, check axioms — which the seed
/// implemented three times with divergent generate-then-filter loops. The
/// engine owns that kernel once:
///
///   - the candidate space: control-flow paths × reads-byte-from
///     justifications (× coherence orders on the ARMv8 side), enumerated
///     by one sharded recursive builder for both the JavaScript and ARMv8
///     event languages;
///   - incremental pruning: JsModel's tot-independent axioms are checked
///     on partial candidates the moment each read's justification
///     completes, cutting whole subtrees before the expensive
///     linear-extension search (derived relations are memoized on the
///     CandidateExecution, so the partial checks share closures);
///   - sharded multi-threaded enumeration: the path × first-justification
///     space is split into work items executed by a small thread pool;
///     per-item results are merged in item order, so the outcome of an
///     enumeration is deterministic regardless of scheduling.
///
/// Frontends are thin adapters: exec/Enumerator, armv8/ArmEnumerator,
/// search/SkeletonSearch, flatsim/FlatSim and unisize/Reduction all route
/// through this class, and new backends plug in as MemoryModel
/// implementations.
///
//===----------------------------------------------------------------------===//

#ifndef JSMM_ENGINE_EXECUTIONENGINE_H
#define JSMM_ENGINE_EXECUTIONENGINE_H

#include "armv8/ArmEnumerator.h"
#include "engine/MemoryModel.h"
#include "engine/TargetModel.h"
#include "exec/Enumerator.h"

#include <functional>
#include <optional>
#include <string>

namespace jsmm {

/// Tuning knobs of the engine.
struct EngineConfig {
  /// Worker threads for whole-space enumerations (enumerate()). 0 means
  /// one worker per hardware thread. Early-stopping visitor walks
  /// (forEachCandidate and friends) are always sequential, because their
  /// visitation order is part of the API.
  unsigned Threads = 1;
  /// Incremental pruning of justification subtrees via the model's
  /// monotone partial-candidate admission check. Turning this off restores
  /// the seed's generate-then-filter behaviour (used as the golden
  /// reference and the benchmark baseline).
  bool Prune = true;
  /// Route even ≤64-event programs through the heap-backed DynRelation
  /// tier in the outcome-level entry points. Only for the
  /// golden-equivalence tests and the `speedup_smallpath_x` benchmark —
  /// it exists to prove the two tiers agree and to measure what the
  /// inline fast path buys; never enable it in production configurations.
  bool ForceDynRelation = false;
  /// Equivalence-aware enumeration in the outcome-level entry points
  /// (enumerateOutcomes for programs and compiled targets): thread/location
  /// symmetry reduction plus sleep sets over rf choices, with outcomes
  /// relabelled back to the full verdict table. The allowed-outcome set is
  /// identical to the unreduced run; CandidatesConsidered/ValidCandidates
  /// drop by design (that is the point). Off by default; the
  /// witness-carrying entry points (enumerate / scDrf / forEach*) always
  /// enumerate the full space because their per-candidate visitation order
  /// and witnesses are part of the API.
  bool Reduction = false;
  /// Static DRF-SC fast path in the outcome-level entry points: when
  /// analysis::classify() certifies the program statically data-race-free
  /// (every cross-thread conflicting access pair is SeqCst on the
  /// identical range), the verdict is served by a single SC interleaving
  /// enumeration under Tier "static" — the SC-DRF theorem (§3.2/Thm 6.1)
  /// plus the Thm 6.3 compilation results pin the SC table as the answer
  /// on every backend, and the equality is asserted against full
  /// enumeration by the static-vs-dynamic differential tests. When the
  /// certificate does not hold, the same value analysis
  /// (analysis::analyzeValues) prunes the full walk instead: writer
  /// choices outside a read's static may-rf candidate set (or
  /// contradicting the path's register constraints) are skipped, and path
  /// combinations with statically-contradicted branch constraints are
  /// dropped — counted by EngineStats::StaticRfPruned / StaticPathsPruned
  /// with verdict tables unchanged (static_values_test pins equality). Off
  /// by default like Reduction; on at the CLI/service front doors, where
  /// --no-static restores the full walk. The witness-carrying entry
  /// points (enumerate / scDrf / forEach*) never use the analysis.
  bool StaticFastPath = false;
  /// Event bound above which the outcome-level entry points answer tot
  /// questions through the SAT/CDCL tier (SolverKind::Sat) instead of the
  /// model's configured order-search solver. The default matches the old
  /// dynamic-tier serving cap, so every program the enumeration tiers used
  /// to serve keeps its solver and the 257..DynRelation::MaxSize range the
  /// cap raise opened is SAT-only. Lower it to force small programs
  /// through the SAT tier (differential tests); raise it past
  /// DynRelation::MaxSize to disable the forcing entirely. An explicit
  /// --solver=sat choice routes through the SAT tier at every size
  /// regardless.
  unsigned SatThreshold = 256;

  static EngineConfig sequential() { return {1, true}; }
  static EngineConfig seedCompatible() { return {1, false}; }
};

/// Effort counters of the most recent enumeration-style call (enumerate,
/// scDrf, forEachAdmittedCandidate) on an engine; each call resets them.
struct EngineStats {
  uint64_t WorkItems = 0;       ///< shards the space was split into
  uint64_t PrunedSubtrees = 0;  ///< justification subtrees cut by pruning
  /// Justification subtrees skipped by the equivalence-aware reduction
  /// (sleep sets over rf choices); 0 unless EngineConfig::Reduction.
  uint64_t SleptBranches = 0;
  /// Writer choices skipped because they fall outside a read's static
  /// may-rf candidate set (analysis::StaticValues) or contradict the
  /// path's register constraints; 0 unless EngineConfig::StaticFastPath.
  /// Deterministic across thread counts, like the other counters.
  uint64_t StaticRfPruned = 0;
  /// Control-flow path combinations dropped because a branch constraint
  /// contradicts a constant read on the path (StaticValues::pathFeasible);
  /// 0 unless EngineConfig::StaticFastPath.
  uint64_t StaticPathsPruned = 0;
};

/// Capacity-agnostic enumeration result: the allowed outcome set plus the
/// effort counters, without per-outcome witness executions (whose relation
/// flavour depends on the tier that served the program). The return type
/// of the enumerateOutcomes() entry points, and the column type of the
/// differential verdict tables.
struct OutcomeSummary {
  std::vector<Outcome> Allowed; ///< sorted (Outcome's operator<)
  uint64_t CandidatesConsidered = 0;
  /// Valid (JS) / consistent (target) candidates counted by the tier.
  uint64_t ValidCandidates = 0;
  /// The relation tier that served the program: "inline" (≤64 events) or
  /// "dyn" (heap DynRelation). Filled by the enumerateOutcomes() doors.
  std::string Tier;
  /// The tot solver the run dispatched to (after any SAT rerouting past
  /// EngineConfig::SatThreshold).
  SolverKind SolverUsed = SolverKind::Propagate;

  bool allows(const Outcome &O) const;
  std::vector<std::string> outcomeStrings() const;
};

/// The unified execution-enumeration engine.
class ExecutionEngine {
public:
  ExecutionEngine() = default;
  explicit ExecutionEngine(EngineConfig Cfg) : Cfg(Cfg) {}

  const EngineConfig &config() const { return Cfg; }
  /// \returns the worker count actually used (resolves Threads == 0).
  unsigned effectiveThreads() const;

  // --- Capacity ----------------------------------------------------------
  //
  // The relation layer has two tiers: the inline single-word Relation
  // (≤ 64 events, every fast path) and the heap-backed DynRelation
  // (≤ DynRelation::MaxSize events), which the outcome-level entry points
  // select automatically per program. capacityError() reports against the
  // dynamic cap — the largest program the engine can serve at all — with a
  // "program too large (N events > 1024)" diagnostic naming
  // DynRelation::MaxSize. Within that cap, programs past
  // EngineConfig::SatThreshold events are answered by the SAT consistency
  // tier (the CDCL tot solver) rather than the order search. The witness-carrying
  // entry points (enumerate / scDrf / forEach*Candidate) return
  // Relation-typed executions and therefore stay on the fixed tier; they
  // throw a CapacityError naming the 64-event bound for larger programs,
  // and enumerateOutcomes() is the size-agnostic door. Every enumeration
  // entry point performs its own check and throws CapacityError (a
  // std::length_error) on failure — in release builds a too-large program
  // is a loud error, never the silent out-of-range bit-shifts the
  // debug-only asserts used to allow. Frontends that accept user input
  // (the litmus parser, jsmm-run, the batch service) call these up front
  // to turn the condition into a structured error instead of an exception.

  /// \returns the diagnostic for \p P against the dynamic serving cap
  /// (DynRelation::MaxSize), or std::nullopt if some tier fits it. The
  /// ArmProgram overload still checks the fixed 64-event tier: the
  /// mixed-size ARMv8 model has no dynamic backend yet (see ROADMAP).
  static std::optional<std::string> capacityError(const Program &P);
  static std::optional<std::string> capacityError(const ArmProgram &P);
  static std::optional<std::string> capacityError(const CompiledTarget &CT);

  /// \returns the fixed-tier (64-event) diagnostic for \p P, or
  /// std::nullopt if the witness-carrying entry points can serve it.
  static std::optional<std::string> fixedCapacityError(const Program &P);
  static std::optional<std::string>
  fixedCapacityError(const CompiledTarget &CT);

  // --- JavaScript frontend -----------------------------------------------

  /// Enumerates the outcomes of \p P allowed by \p M, sharded across the
  /// configured threads, with incremental pruning when enabled. The
  /// allowed-outcome set and CandidatesConsidered are identical for every
  /// thread count; ValidCandidates may differ in sharded mode because
  /// outcome deduplication (which gates the validity check) is per work
  /// item rather than global.
  EnumerationResult enumerate(const Program &P, const JsModel &M) const;

  /// Outcome-level enumeration for either capacity tier: the allowed
  /// outcome set (sorted), without witnesses. Identical outcomes and
  /// counters to enumerate() on ≤64-event programs (it is the same
  /// templated core, instantiated on Relation there and on DynRelation for
  /// larger programs). Throws CapacityError only past
  /// DynRelation::MaxSize events.
  OutcomeSummary enumerateOutcomes(const Program &P, const JsModel &M) const;

  /// Checks the SC-DRF property of \p P under \p M (sequential, early
  /// stopping).
  ScDrfReport scDrf(const Program &P, const JsModel &M) const;

  /// Invokes \p Visit on every well-formed candidate execution of \p P
  /// with its outcome — the complete, unpruned space, in deterministic
  /// order. \p Visit returns false to stop early; \returns false if
  /// stopped.
  bool forEachCandidate(
      const Program &P,
      const std::function<bool(const CandidateExecution &, const Outcome &)>
          &Visit) const;

  /// As forEachCandidate, but prunes subtrees \p M cannot admit (every
  /// visited candidate is still complete and well-formed; candidates whose
  /// prefixes violate tot-independent axioms are skipped).
  bool forEachAdmittedCandidate(
      const Program &P, const JsModel &M,
      const std::function<bool(const CandidateExecution &, const Outcome &)>
          &Visit) const;

  // --- ARMv8 frontend ----------------------------------------------------

  /// Enumerates the outcomes of \p P consistent under \p M, sharded across
  /// the configured threads.
  ArmEnumerationResult enumerate(const ArmProgram &P,
                                 const Armv8Model &M) const;

  /// Invokes \p Visit once per control-flow unfolding with the
  /// materialised skeleton (events, po, dependencies; reads unjustified).
  bool forEachSkeleton(
      const ArmProgram &P,
      const std::function<bool(const ArmSkeleton &)> &Visit) const;

  /// Invokes \p Visit on every well-formed ARMv8 candidate (rbf and co
  /// complete; consistency not yet checked) with its outcome.
  bool forEachArmCandidate(
      const ArmProgram &P,
      const std::function<bool(const ArmExecution &, const Outcome &)>
          &Visit) const;

  // --- Target-architecture frontend (Thm 6.3 backends) -------------------

  /// Enumerates the outcomes of the compiled program \p CT consistent
  /// under the target backend \p M, sharded across the configured threads,
  /// with incremental po-loc ∪ rf pruning when enabled. The
  /// allowed-outcome set and CandidatesConsidered are identical for every
  /// thread count (per-item results merged in item order);
  /// ConsistentCandidates may differ in sharded mode because outcome
  /// deduplication (which gates the consistency check) is per work item
  /// rather than global — the same caveat as the JS enumerate().
  TargetEnumerationResult enumerate(const CompiledTarget &CT,
                                    const TargetModel &M) const;

  /// Outcome-level target enumeration for either capacity tier; see the
  /// JavaScript enumerateOutcomes overload for the contract.
  OutcomeSummary enumerateOutcomes(const CompiledTarget &CT,
                                   const TargetModel &M) const;

  /// Invokes \p Visit on every well-formed execution of \p CT (rf and
  /// per-location coherence chosen; consistency not yet checked) with its
  /// outcome, in deterministic order. \p Visit returns false to stop
  /// early; \returns false if stopped.
  bool forEachTargetCandidate(
      const CompiledTarget &CT,
      const std::function<bool(const TargetExecution &, const Outcome &)>
          &Visit) const;

  /// As forEachTargetCandidate, but prunes rf subtrees \p M cannot admit
  /// (every visited candidate is still complete and well-formed).
  bool forEachAdmittedTargetCandidate(
      const CompiledTarget &CT, const TargetModel &M,
      const std::function<bool(const TargetExecution &, const Outcome &)>
          &Visit) const;

  // --- Skeleton-search support -------------------------------------------

  /// Joint single-byte rbf justification of a JS/ARM twin pair sharing
  /// events one-to-one (the §5.1 compilation scheme): enumerates one
  /// writer per read, mirroring every choice into both executions, and
  /// invokes \p Visit on each complete justification. Reads must be
  /// single-byte. \p Visit returns false to stop; \returns false if
  /// stopped.
  static bool forEachTwinJustification(
      CandidateExecution &Js, ArmExecution &Arm,
      const std::function<bool(const CandidateExecution &,
                               const ArmExecution &)> &Visit);

  /// Effort counters of the most recent enumerate() call on this engine.
  /// Publication discipline: worker threads only ever write per-item
  /// shards (merged on the calling thread after the join); every entry
  /// point accumulates into a function-local EngineStats and assigns it
  /// here exactly once, after all workers have finished. So for a fixed
  /// workload the counters are byte-identical across Threads settings
  /// (pinned by engine_test) and the member is never touched while
  /// workers run (pinned by the ThreadSanitizer CI job).
  mutable EngineStats Stats;

private:
  EngineConfig Cfg;
};

} // namespace jsmm

#endif // JSMM_ENGINE_EXECUTIONENGINE_H
