//===- search/SkeletonSearch.cpp ------------------------------------------===//

#include "search/SkeletonSearch.h"

#include "compile/TotConstruction.h"
#include "core/DataRace.h"
#include "core/SeqConsistency.h"
#include "engine/ExecutionEngine.h"

#include <algorithm>

using namespace jsmm;

namespace {

/// Per-event skeleton assignment.
struct EventShape {
  int Thread = 0;
  bool IsWrite = true;
  Mode Ord = Mode::SeqCst;
  unsigned Loc = 0;
};

/// Builds the JS/ARM twins for a complete shape assignment. Event 0 is
/// Init; access event i of the shape becomes event i+1.
void buildTwins(const std::vector<EventShape> &Shape, unsigned NumLocs,
                CandidateExecution &Js, ArmExecution &Arm) {
  unsigned N = static_cast<unsigned>(Shape.size());
  std::vector<Event> JsEvents;
  std::vector<ArmEvent> ArmEvents;
  JsEvents.push_back(makeInit(0, NumLocs));
  ArmEvents.push_back(makeArmInit(0, NumLocs));
  for (unsigned I = 0; I < N; ++I) {
    const EventShape &S = Shape[I];
    EventId Id = I + 1;
    // Writes write the distinct value Id; reads get values through rbf.
    if (S.IsWrite) {
      JsEvents.push_back(makeWrite(Id, S.Thread, S.Ord, S.Loc, 1,
                                   /*Value=*/Id));
      ArmEvents.push_back(makeArmWrite(Id, S.Thread, S.Loc, 1, /*Value=*/Id,
                                       /*Release=*/S.Ord == Mode::SeqCst));
    } else {
      JsEvents.push_back(makeRead(Id, S.Thread, S.Ord, S.Loc, 1,
                                  /*Value=*/0));
      ArmEvents.push_back(makeArmRead(Id, S.Thread, S.Loc, 1,
                                      /*Acquire=*/S.Ord == Mode::SeqCst));
    }
  }
  Js = CandidateExecution(std::move(JsEvents));
  Arm = ArmExecution(std::move(ArmEvents));
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = I + 1; J < N; ++J)
      if (Shape[I].Thread == Shape[J].Thread) {
        Js.Sb.set(I + 1, J + 1);
        Arm.Po.set(I + 1, J + 1);
      }
}

/// Enumerates rbf choices for the twins through the engine's joint
/// justifier, metering the candidate budget.
bool enumerateRbf(
    CandidateExecution &Js, ArmExecution &Arm, SearchStats *Stats,
    uint64_t MaxCandidates,
    const std::function<bool(const CandidateExecution &, const ArmExecution &)>
        &Visit) {
  return ExecutionEngine::forEachTwinJustification(
      Js, Arm,
      [&](const CandidateExecution &J, const ArmExecution &A) {
        if (Stats) {
          ++Stats->RbfCandidates;
          if (MaxCandidates && Stats->RbfCandidates > MaxCandidates) {
            Stats->BudgetExhausted = true;
            return false;
          }
        }
        return Visit(J, A);
      });
}

/// Enumerates shapes: thread restricted-growth strings x kind x mode x loc.
bool enumerateShapes(
    const SearchConfig &Cfg, unsigned NumEvents, unsigned NumLocs,
    std::vector<EventShape> &Shape, unsigned Pos, int MaxThreadUsed,
    SearchStats *Stats,
    const std::function<bool(const CandidateExecution &, const ArmExecution &)>
        &Visit) {
  if (Pos == NumEvents) {
    // Require every location to be used (smaller-footprint shapes are
    // covered by the smaller NumLocs pass).
    uint64_t Used = 0;
    for (const EventShape &S : Shape)
      Used |= uint64_t(1) << S.Loc;
    if (Used != (uint64_t(1) << NumLocs) - 1)
      return true;
    if (Stats)
      ++Stats->Skeletons;
    CandidateExecution Js;
    ArmExecution Arm;
    buildTwins(Shape, NumLocs, Js, Arm);
    return enumerateRbf(Js, Arm, Stats, Cfg.MaxCandidates, Visit);
  }
  int ThreadLimit = std::min<int>(MaxThreadUsed + 1,
                                  static_cast<int>(Cfg.MaxThreads) - 1);
  for (int T = 0; T <= ThreadLimit; ++T)
    for (bool IsWrite : {true, false})
      for (Mode Ord : {Mode::SeqCst, Mode::Unordered})
        for (unsigned Loc = 0; Loc < NumLocs; ++Loc) {
          Shape[Pos] = {T, IsWrite, Ord, Loc};
          if (!enumerateShapes(Cfg, NumEvents, NumLocs, Shape, Pos + 1,
                               std::max(MaxThreadUsed, T), Stats, Visit))
            return false;
        }
  return true;
}

} // namespace

bool jsmm::forEachSkeletonCandidate(
    const SearchConfig &Cfg,
    const std::function<bool(const CandidateExecution &, const ArmExecution &)>
        &Visit,
    SearchStats *Stats) {
  for (unsigned N = Cfg.MinEvents; N <= Cfg.MaxEvents; ++N)
    for (unsigned L = 1; L <= Cfg.NumLocs; ++L) {
      std::vector<EventShape> Shape(N);
      if (!enumerateShapes(Cfg, N, L, Shape, 0, -1, Stats, Visit))
        return false;
    }
  return true;
}

bool jsmm::armConsistentForSomeCo(const ArmExecution &X,
                                  ArmExecution *Witness) {
  return Armv8Model().allowsForSomeCo(X, Witness);
}

bool jsmm::existsInvalidTot(const CandidateExecution &CE, ModelSpec Spec,
                            Relation *TotOut) {
  return JsModel(Spec).refutableForSomeTot(CE, TotOut);
}

std::optional<SkeletonCex>
jsmm::searchArmCompilationCex(const SearchConfig &Cfg, SearchStats *Stats) {
  std::optional<SkeletonCex> Found;
  forEachSkeletonCandidate(
      Cfg,
      [&](const CandidateExecution &Js, const ArmExecution &Arm) {
        if (Cfg.ExcludeInitSynchronization) {
          for (const Event &R : Js.Events) {
            if (!R.isRead() || R.Ord != Mode::SeqCst)
              continue;
            bool OnlyInit = true;
            for (const RbfEdge &E : Js.Rbf)
              if (E.Reader == R.Id &&
                  Js.Events[E.Writer].Ord != Mode::Init)
                OnlyInit = false;
            if (OnlyInit)
              return true; // would synchronize with Init: skip
          }
        }
        // Cheap necessary condition first: decide JS-side invalidity (in
        // the configured deadness mode), then look for an ARM witness.
        // The witness copy is deferred to the (rare) hit path.
        bool JsBad = false;
        Relation Tot;
        bool HasTot = false;
        switch (Cfg.Deadness) {
        case SearchConfig::DeadnessMode::Semantic:
          JsBad = isSemanticallyDead(Js, Cfg.Js);
          break;
        case SearchConfig::DeadnessMode::Syntactic:
          JsBad = existsSyntacticallyDeadTot(Js, Cfg.Js, &Tot);
          HasTot = JsBad;
          break;
        case SearchConfig::DeadnessMode::None:
          JsBad = existsInvalidTot(Js, Cfg.Js, &Tot);
          HasTot = JsBad;
          break;
        }
        if (!JsBad)
          return true;
        CandidateExecution JsWitness = Js;
        if (HasTot)
          JsWitness.Tot = Tot;
        if (Stats)
          ++Stats->ArmConsistencyChecks;
        ArmExecution Witness;
        if (!armConsistentForSomeCo(Arm, &Witness))
          return true;
        SkeletonCex Cex;
        Cex.Js = JsWitness;
        Cex.Arm = Witness;
        Cex.NumEvents = Js.numEvents() - 1; // exclude Init
        uint64_t Used = 0;
        for (const Event &E : Js.Events)
          if (E.Ord != Mode::Init)
            Used |= uint64_t(1) << E.Index;
        Cex.NumLocs = static_cast<unsigned>(__builtin_popcountll(Used));
        Found = std::move(Cex);
        return false;
      },
      Stats);
  return Found;
}

std::optional<SkeletonCex> jsmm::searchScDrfCex(const SearchConfig &Cfg,
                                                SearchStats *Stats) {
  std::optional<SkeletonCex> Found;
  forEachSkeletonCandidate(
      Cfg,
      [&](const CandidateExecution &Js, const ArmExecution &Arm) {
        (void)Arm;
        Relation Tot;
        if (!isValidForSomeTot(Js, Cfg.Js, &Tot))
          return true;
        if (!isRaceFree(Js, Cfg.Js))
          return true;
        if (isSequentiallyConsistent(Js))
          return true;
        SkeletonCex Cex;
        Cex.Js = Js;
        Cex.Js.Tot = Tot;
        Cex.NumEvents = Js.numEvents() - 1;
        uint64_t Used = 0;
        for (const Event &E : Js.Events)
          if (E.Ord != Mode::Init)
            Used |= uint64_t(1) << E.Index;
        Cex.NumLocs = static_cast<unsigned>(__builtin_popcountll(Used));
        Found = std::move(Cex);
        return false;
      },
      Stats);
  return Found;
}

BoundedCompilationReport
jsmm::boundedCompilationCheck(const SearchConfig &Cfg) {
  BoundedCompilationReport Report;
  SearchStats Stats;
  forEachSkeletonCandidate(
      Cfg,
      [&](const CandidateExecution &Js, const ArmExecution &Arm) {
        // Enumerate every consistent coherence witness and verify the tot
        // construction on each.
        ArmExecution Work = Arm;
        Work.Co = Work.computeGranules();
        forEachCoherenceCompletion(Work, [&] {
          if (!isArmConsistent(Work))
            return true;
          ++Report.ArmConsistentExecutions;
          TranslationResult TR;
          TR.Js = Js;
          TR.JsOfArm.resize(Work.numEvents());
          for (unsigned I = 0; I < Work.numEvents(); ++I)
            TR.JsOfArm[I] = I;
          Relation Tot;
          bool Ok = false;
          if (constructTot(TR, Work, &Tot)) {
            CandidateExecution WithTot = Js;
            WithTot.Tot = Tot;
            Ok = isValid(WithTot, Cfg.Js);
          }
          if (!Ok) {
            ++Report.ConstructionFailures;
            if (!Report.FirstFailure) {
              SkeletonCex F;
              F.Js = Js;
              F.Arm = Work;
              F.NumEvents = Js.numEvents() - 1;
              Report.FirstFailure = std::move(F);
            }
          }
          return true;
        });
        return true;
      },
      &Stats);
  Report.Skeletons = Stats.Skeletons;
  Report.RbfCandidates = Stats.RbfCandidates;
  return Report;
}
