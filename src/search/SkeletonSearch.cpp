//===- search/SkeletonSearch.cpp ------------------------------------------===//

#include "search/SkeletonSearch.h"

#include "compile/TotConstruction.h"
#include "core/DataRace.h"
#include "core/SeqConsistency.h"
#include "engine/ExecutionEngine.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

using namespace jsmm;

namespace {

/// Per-event skeleton assignment.
struct EventShape {
  int Thread = 0;
  bool IsWrite = true;
  Mode Ord = Mode::SeqCst;
  unsigned Loc = 0;
};

/// Builds the JS/ARM twins for a complete shape assignment. Event 0 is
/// Init; access event i of the shape becomes event i+1.
void buildTwins(const std::vector<EventShape> &Shape, unsigned NumLocs,
                CandidateExecution &Js, ArmExecution &Arm) {
  unsigned N = static_cast<unsigned>(Shape.size());
  std::vector<Event> JsEvents;
  std::vector<ArmEvent> ArmEvents;
  JsEvents.push_back(makeInit(0, NumLocs));
  ArmEvents.push_back(makeArmInit(0, NumLocs));
  for (unsigned I = 0; I < N; ++I) {
    const EventShape &S = Shape[I];
    EventId Id = I + 1;
    // Writes write the distinct value Id; reads get values through rbf.
    if (S.IsWrite) {
      JsEvents.push_back(makeWrite(Id, S.Thread, S.Ord, S.Loc, 1,
                                   /*Value=*/Id));
      ArmEvents.push_back(makeArmWrite(Id, S.Thread, S.Loc, 1, /*Value=*/Id,
                                       /*Release=*/S.Ord == Mode::SeqCst));
    } else {
      JsEvents.push_back(makeRead(Id, S.Thread, S.Ord, S.Loc, 1,
                                  /*Value=*/0));
      ArmEvents.push_back(makeArmRead(Id, S.Thread, S.Loc, 1,
                                      /*Acquire=*/S.Ord == Mode::SeqCst));
    }
  }
  Js = CandidateExecution(std::move(JsEvents));
  Arm = ArmExecution(std::move(ArmEvents));
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = I + 1; J < N; ++J)
      if (Shape[I].Thread == Shape[J].Thread) {
        Js.Sb.set(I + 1, J + 1);
        Arm.Po.set(I + 1, J + 1);
      }
}

/// Enumerates the canonical choices for one shape position (threads as a
/// restricted-growth string x kind x mode x location), invoking
/// \p Fn(Shape) for each. The single source of the choice order: both the
/// sequential recursion and the sharded work-unit collection iterate
/// through here, so unit order always refines sequential order.
/// \p Fn returns false to stop; \returns false if stopped.
template <typename FnT>
bool forEachShapeChoice(const SearchConfig &Cfg, unsigned NumLocs,
                        int MaxThreadUsed, FnT Fn) {
  int ThreadLimit = std::min<int>(MaxThreadUsed + 1,
                                  static_cast<int>(Cfg.MaxThreads) - 1);
  for (int T = 0; T <= ThreadLimit; ++T)
    for (bool IsWrite : {true, false})
      for (Mode Ord : {Mode::SeqCst, Mode::Unordered})
        for (unsigned Loc = 0; Loc < NumLocs; ++Loc)
          if (!Fn(EventShape{T, IsWrite, Ord, Loc}))
            return false;
  return true;
}

/// Per-work-unit rbf-candidate meter. Counts locally and flushes into the
/// shared total when the unit finishes, so workers do not contend on an
/// atomic per candidate; the budget check uses the unit-start snapshot of
/// the shared total plus the local count — exact in sequential runs,
/// slightly permissive across concurrent units (documented on
/// SearchConfig::Threads).
struct RbfMeter {
  std::atomic<uint64_t> *Total = nullptr; ///< null: no metering
  std::atomic<bool> *Exhausted = nullptr;
  uint64_t Max = 0;  ///< 0: no cap
  uint64_t Base = 0; ///< shared total at unit start
  uint64_t Local = 0;

  void beginUnit() {
    if (Total)
      Base = Total->load(std::memory_order_relaxed);
    Local = 0;
  }
  void flushUnit() {
    if (Total && Local)
      Total->fetch_add(Local, std::memory_order_relaxed);
    Local = 0;
  }
};

/// Enumerates rbf choices for the twins through the engine's joint
/// justifier, metering the candidate budget.
bool enumerateRbf(
    CandidateExecution &Js, ArmExecution &Arm, RbfMeter *Meter,
    const std::function<bool(const CandidateExecution &, const ArmExecution &)>
        &Visit) {
  return ExecutionEngine::forEachTwinJustification(
      Js, Arm,
      [&](const CandidateExecution &J, const ArmExecution &A) {
        if (Meter && Meter->Total) {
          ++Meter->Local;
          if (Meter->Max && Meter->Base + Meter->Local > Meter->Max) {
            if (Meter->Exhausted)
              Meter->Exhausted->store(true, std::memory_order_relaxed);
            return false;
          }
          if (Meter->Exhausted &&
              Meter->Exhausted->load(std::memory_order_relaxed))
            return false;
        }
        return Visit(J, A);
      });
}

/// Enumerates shapes from position \p Pos (earlier positions prefilled):
/// thread restricted-growth strings x kind x mode x loc.
bool enumerateShapes(
    const SearchConfig &Cfg, unsigned NumEvents, unsigned NumLocs,
    std::vector<EventShape> &Shape, unsigned Pos, int MaxThreadUsed,
    std::atomic<uint64_t> *Skeletons, RbfMeter *Meter,
    const std::function<bool(const CandidateExecution &, const ArmExecution &)>
        &Visit) {
  if (Pos == NumEvents) {
    // Require every location to be used (smaller-footprint shapes are
    // covered by the smaller NumLocs pass).
    uint64_t Used = 0;
    for (const EventShape &S : Shape)
      Used |= uint64_t(1) << S.Loc;
    if (Used != (uint64_t(1) << NumLocs) - 1)
      return true;
    if (Skeletons)
      Skeletons->fetch_add(1, std::memory_order_relaxed);
    CandidateExecution Js;
    ArmExecution Arm;
    buildTwins(Shape, NumLocs, Js, Arm);
    return enumerateRbf(Js, Arm, Meter, Visit);
  }
  return forEachShapeChoice(Cfg, NumLocs, MaxThreadUsed,
                            [&](const EventShape &S) {
                              Shape[Pos] = S;
                              return enumerateShapes(
                                  Cfg, NumEvents, NumLocs, Shape, Pos + 1,
                                  std::max(MaxThreadUsed, S.Thread),
                                  Skeletons, Meter, Visit);
                            });
}

//===----------------------------------------------------------------------===//
// Sharded sweep driver
//===----------------------------------------------------------------------===//

/// One work unit of a sharded (NumEvents, NumLocs) pass: a complete
/// assignment of the first few shape positions; the unit enumerates the
/// remaining positions sequentially. Units are collected in the order the
/// sequential recursion reaches their prefixes, so unit order refines the
/// sequential enumeration order.
struct ShapeUnit {
  std::vector<EventShape> Prefix;
  int MaxThreadUsed = -1;
};

void collectUnits(const SearchConfig &Cfg, unsigned NumLocs,
                  std::vector<EventShape> &Prefix, unsigned Pos,
                  unsigned Depth, int MaxThreadUsed,
                  std::vector<ShapeUnit> &Units) {
  if (Pos == Depth) {
    Units.push_back({Prefix, MaxThreadUsed});
    return;
  }
  forEachShapeChoice(Cfg, NumLocs, MaxThreadUsed, [&](const EventShape &S) {
    Prefix[Pos] = S;
    collectUnits(Cfg, NumLocs, Prefix, Pos + 1, Depth,
                 std::max(MaxThreadUsed, S.Thread), Units);
    return true;
  });
}

/// The candidate visitor of a sharded sweep. Invoked concurrently from
/// different units, with the unit index; must only touch state owned by
/// that unit (or atomics). \returns false to finish the unit early — the
/// driver records the unit as a hit.
using UnitVisit = std::function<bool(size_t Unit, const CandidateExecution &,
                                     const ArmExecution &)>;

/// Runs one (NumEvents, NumLocs) pass of the skeleton sweep across
/// \p Workers threads. A unit whose index exceeds the smallest hit unit so
/// far is abandoned (its hit could never win), so early termination
/// carries over from the sequential search; units below the current best
/// always run to completion, which makes the winning unit — and therefore
/// the search result — identical for every thread count in unbudgeted
/// runs. (A budget is consumed jointly by concurrent units, so where it
/// cuts off — and hence the result of a budget-capped multi-worker run —
/// depends on scheduling; see SearchConfig::Threads.)
///
/// \returns the smallest hit unit index, or SIZE_MAX if no unit hit.
size_t runShardedPass(const SearchConfig &Cfg, unsigned NumEvents,
                      unsigned NumLocs, unsigned Workers, SearchStats *Stats,
                      std::atomic<bool> &BudgetExhausted,
                      const UnitVisit &Visit) {
  unsigned Depth = std::min(NumEvents, 2u);
  std::vector<ShapeUnit> Units;
  {
    std::vector<EventShape> Prefix(Depth);
    collectUnits(Cfg, NumLocs, Prefix, 0, Depth, -1, Units);
  }

  std::atomic<uint64_t> Skeletons{0}, RbfCandidates{Stats ? Stats->RbfCandidates
                                                          : 0};
  std::atomic<size_t> NextUnit{0};
  std::atomic<size_t> MinHitUnit{SIZE_MAX};

  auto RunUnit = [&](size_t I) {
    ShapeUnit &U = Units[I];
    std::vector<EventShape> Shape(NumEvents);
    std::copy(U.Prefix.begin(), U.Prefix.end(), Shape.begin());
    RbfMeter Meter{Stats ? &RbfCandidates : nullptr, &BudgetExhausted,
                   Cfg.MaxCandidates};
    Meter.beginUnit();
    enumerateShapes(
        Cfg, NumEvents, NumLocs, Shape, Depth, U.MaxThreadUsed, &Skeletons,
        &Meter,
        [&](const CandidateExecution &Js, const ArmExecution &Arm) {
          if (BudgetExhausted.load(std::memory_order_relaxed))
            return false;
          if (I > MinHitUnit.load(std::memory_order_relaxed))
            return false; // beaten by an earlier unit: abandon
          if (!Visit(I, Js, Arm)) {
            // Record the hit; keep the smallest unit index.
            size_t Cur = MinHitUnit.load(std::memory_order_relaxed);
            while (I < Cur &&
                   !MinHitUnit.compare_exchange_weak(Cur, I,
                                                     std::memory_order_relaxed))
              ;
            return false;
          }
          return true;
        });
    Meter.flushUnit();
  };

  auto Worker = [&] {
    for (size_t I = NextUnit.fetch_add(1); I < Units.size();
         I = NextUnit.fetch_add(1)) {
      if (BudgetExhausted.load(std::memory_order_relaxed))
        break;
      if (I > MinHitUnit.load(std::memory_order_relaxed))
        continue;
      RunUnit(I);
    }
  };

  if (Workers <= 1 || Units.size() <= 1) {
    Worker();
  } else {
    std::vector<std::thread> Pool;
    unsigned NumThreads = static_cast<unsigned>(
        std::min<size_t>(Workers, Units.size()));
    Pool.reserve(NumThreads);
    for (unsigned T = 0; T < NumThreads; ++T)
      Pool.emplace_back(Worker);
    for (std::thread &T : Pool)
      T.join();
  }

  if (Stats) {
    Stats->Skeletons += Skeletons.load();
    Stats->RbfCandidates = RbfCandidates.load();
    if (BudgetExhausted.load())
      Stats->BudgetExhausted = true;
  }
  return MinHitUnit.load();
}

unsigned searchWorkers(const SearchConfig &Cfg) {
  if (Cfg.Threads)
    return Cfg.Threads;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

/// Runs the full (events × locations) sweep, returning the first hit of
/// \p TryCandidate in sequential enumeration order, for any thread count.
/// TryCandidate must be pure: it may not touch shared mutable state.
std::optional<SkeletonCex> shardedFirstHit(
    const SearchConfig &Cfg, SearchStats *Stats,
    const std::function<std::optional<SkeletonCex>(
        const CandidateExecution &, const ArmExecution &)> &TryCandidate) {
  unsigned Workers = searchWorkers(Cfg);
  std::atomic<bool> BudgetExhausted{false};
  for (unsigned N = Cfg.MinEvents; N <= Cfg.MaxEvents; ++N)
    for (unsigned L = 1; L <= Cfg.NumLocs; ++L) {
      std::vector<std::optional<SkeletonCex>> Hits;
      std::mutex HitsMutex;
      size_t Winner = runShardedPass(
          Cfg, N, L, Workers, Stats, BudgetExhausted,
          [&](size_t Unit, const CandidateExecution &Js,
              const ArmExecution &Arm) {
            std::optional<SkeletonCex> Hit = TryCandidate(Js, Arm);
            if (!Hit)
              return true;
            std::lock_guard<std::mutex> Lock(HitsMutex);
            if (Hits.size() <= Unit)
              Hits.resize(Unit + 1);
            Hits[Unit] = std::move(Hit);
            return false;
          });
      if (Winner != SIZE_MAX)
        return std::move(Hits[Winner]);
      if (BudgetExhausted.load())
        return std::nullopt;
    }
  return std::nullopt;
}

} // namespace

bool jsmm::forEachSkeletonCandidate(
    const SearchConfig &Cfg,
    const std::function<bool(const CandidateExecution &, const ArmExecution &)>
        &Visit,
    SearchStats *Stats) {
  // Sequential by contract: the visitation order is part of the API.
  std::atomic<uint64_t> Skeletons{0}, RbfCandidates{0};
  std::atomic<bool> BudgetExhausted{false};
  RbfMeter Meter{Stats ? &RbfCandidates : nullptr, &BudgetExhausted,
                 Cfg.MaxCandidates};
  Meter.beginUnit();
  bool Completed = true;
  for (unsigned N = Cfg.MinEvents; N <= Cfg.MaxEvents && Completed; ++N)
    for (unsigned L = 1; L <= Cfg.NumLocs && Completed; ++L) {
      std::vector<EventShape> Shape(N);
      Completed = enumerateShapes(Cfg, N, L, Shape, 0, -1, &Skeletons,
                                  &Meter, Visit);
    }
  Meter.flushUnit();
  if (Stats) {
    Stats->Skeletons += Skeletons.load();
    Stats->RbfCandidates += RbfCandidates.load();
    if (BudgetExhausted.load())
      Stats->BudgetExhausted = true;
  }
  return Completed && !BudgetExhausted.load();
}

bool jsmm::armConsistentForSomeCo(const ArmExecution &X,
                                  ArmExecution *Witness) {
  return Armv8Model().allowsForSomeCo(X, Witness);
}

bool jsmm::existsInvalidTot(const CandidateExecution &CE, ModelSpec Spec,
                            Relation *TotOut, SolverConfig Solver) {
  return JsModel(Spec, Solver).refutableForSomeTot(CE, TotOut);
}

std::optional<SkeletonCex>
jsmm::searchArmCompilationCex(const SearchConfig &Cfg, SearchStats *Stats) {
  const TotSolver &Solver = totSolver(Cfg.Solver);
  std::atomic<uint64_t> ArmChecks{0};
  auto TryCandidate =
      [&](const CandidateExecution &Js,
          const ArmExecution &Arm) -> std::optional<SkeletonCex> {
    if (Cfg.ExcludeInitSynchronization) {
      for (const Event &R : Js.Events) {
        if (!R.isRead() || R.Ord != Mode::SeqCst)
          continue;
        bool OnlyInit = true;
        for (const RbfEdge &E : Js.Rbf)
          if (E.Reader == R.Id && Js.Events[E.Writer].Ord != Mode::Init)
            OnlyInit = false;
        if (OnlyInit)
          return std::nullopt; // would synchronize with Init: skip
      }
    }
    // Cheap necessary condition first: decide JS-side invalidity (in the
    // configured deadness mode), then look for an ARM witness. The witness
    // copy is deferred to the (rare) hit path.
    bool JsBad = false;
    Relation Tot;
    bool HasTot = false;
    switch (Cfg.Deadness) {
    case SearchConfig::DeadnessMode::Semantic:
      JsBad = isSemanticallyDead(Js, Cfg.Js, Solver);
      break;
    case SearchConfig::DeadnessMode::Syntactic:
      JsBad = existsSyntacticallyDeadTot(Js, Cfg.Js, &Tot, Solver);
      HasTot = JsBad;
      break;
    case SearchConfig::DeadnessMode::None:
      JsBad = existsInvalidTot(Js, Cfg.Js, &Tot, Cfg.Solver);
      HasTot = JsBad;
      break;
    }
    if (!JsBad)
      return std::nullopt;
    ArmChecks.fetch_add(1, std::memory_order_relaxed);
    ArmExecution Witness;
    if (!armConsistentForSomeCo(Arm, &Witness))
      return std::nullopt;
    SkeletonCex Cex;
    Cex.Js = Js;
    if (HasTot)
      Cex.Js.Tot = Tot;
    Cex.Arm = Witness;
    Cex.NumEvents = Js.numEvents() - 1; // exclude Init
    uint64_t Used = 0;
    for (const Event &E : Js.Events)
      if (E.Ord != Mode::Init)
        Used |= uint64_t(1) << E.Index;
    Cex.NumLocs = static_cast<unsigned>(__builtin_popcountll(Used));
    return Cex;
  };
  std::optional<SkeletonCex> Found = shardedFirstHit(Cfg, Stats, TryCandidate);
  if (Stats)
    Stats->ArmConsistencyChecks += ArmChecks.load();
  return Found;
}

std::optional<SkeletonCex> jsmm::searchScDrfCex(const SearchConfig &Cfg,
                                                SearchStats *Stats) {
  const TotSolver &Solver = totSolver(Cfg.Solver);
  auto TryCandidate =
      [&](const CandidateExecution &Js,
          const ArmExecution &Arm) -> std::optional<SkeletonCex> {
    (void)Arm;
    Relation Tot;
    if (!isValidForSomeTot(Js, Cfg.Js, &Tot, Solver))
      return std::nullopt;
    if (!isRaceFree(Js, Cfg.Js))
      return std::nullopt;
    if (isSequentiallyConsistent(Js))
      return std::nullopt;
    SkeletonCex Cex;
    Cex.Js = Js;
    Cex.Js.Tot = Tot;
    Cex.NumEvents = Js.numEvents() - 1;
    uint64_t Used = 0;
    for (const Event &E : Js.Events)
      if (E.Ord != Mode::Init)
        Used |= uint64_t(1) << E.Index;
    Cex.NumLocs = static_cast<unsigned>(__builtin_popcountll(Used));
    return Cex;
  };
  return shardedFirstHit(Cfg, Stats, TryCandidate);
}

BoundedCompilationReport
jsmm::boundedCompilationCheck(const SearchConfig &Cfg) {
  unsigned Workers = searchWorkers(Cfg);
  SearchStats Stats;
  std::atomic<bool> BudgetExhausted{false};
  std::atomic<uint64_t> ArmConsistent{0}, Failures{0};
  std::mutex FirstFailureMutex;
  // (pass index, unit index, in-unit order) of the earliest failure so
  // far; the sequential enumeration order, so FirstFailure is
  // deterministic for every thread count.
  std::pair<uint64_t, size_t> FirstFailureRank{~uint64_t(0), SIZE_MAX};
  std::optional<SkeletonCex> FirstFailure;

  uint64_t PassIdx = 0;
  for (unsigned N = Cfg.MinEvents;
       N <= Cfg.MaxEvents && !BudgetExhausted.load(); ++N)
    for (unsigned L = 1; L <= Cfg.NumLocs && !BudgetExhausted.load();
         ++L, ++PassIdx) {
      runShardedPass(
          Cfg, N, L, Workers, &Stats, BudgetExhausted,
          [&](size_t Unit, const CandidateExecution &Js,
              const ArmExecution &Arm) {
            // Enumerate every consistent coherence witness (the pruned
            // walk refutes inconsistent coherence subtrees on their
            // prefix) and verify the tot construction on each.
            ArmExecution Work = Arm;
            Work.Co = Work.computeGranules();
            forEachConsistentCoherenceCompletion(Work, [&] {
              ArmConsistent.fetch_add(1, std::memory_order_relaxed);
              TranslationResult TR;
              TR.Js = Js;
              TR.JsOfArm.resize(Work.numEvents());
              for (unsigned I = 0; I < Work.numEvents(); ++I)
                TR.JsOfArm[I] = I;
              Relation Tot;
              bool Ok = false;
              if (constructTot(TR, Work, &Tot)) {
                CandidateExecution WithTot = Js;
                WithTot.Tot = Tot;
                Ok = isValid(WithTot, Cfg.Js);
              }
              if (!Ok) {
                Failures.fetch_add(1, std::memory_order_relaxed);
                std::lock_guard<std::mutex> Lock(FirstFailureMutex);
                std::pair<uint64_t, size_t> Rank{PassIdx, Unit};
                if (Rank < FirstFailureRank) {
                  FirstFailureRank = Rank;
                  SkeletonCex F;
                  F.Js = Js;
                  F.Arm = Work;
                  F.NumEvents = Js.numEvents() - 1;
                  FirstFailure = std::move(F);
                }
              }
              return true;
            });
            return true;
          });
    }

  BoundedCompilationReport Report;
  Report.Skeletons = Stats.Skeletons;
  Report.RbfCandidates = Stats.RbfCandidates;
  Report.ArmConsistentExecutions = ArmConsistent.load();
  Report.ConstructionFailures = Failures.load();
  Report.FirstFailure = std::move(FirstFailure);
  return Report;
}
