//===- search/Deadness.cpp ------------------------------------------------===//

#include "search/Deadness.h"

#include "support/LinearExtensions.h"

using namespace jsmm;

namespace {

/// Critical edge classes: W_SC -> W_any and W_any -> R_SC (the tot edges
/// the Sequentially Consistent Atomics shapes are built from).
bool criticalEdgesAreHbForced(const CandidateExecution &CE,
                              const Relation &Tot, const Relation &Hb) {
  bool Forced = true;
  Tot.forEachPair([&](unsigned A, unsigned B) {
    if (!Forced)
      return;
    const Event &Ea = CE.Events[A];
    const Event &Eb = CE.Events[B];
    bool Critical =
        (Ea.isWrite() && Ea.Ord == Mode::SeqCst && Eb.isWrite()) ||
        (Ea.isWrite() && Eb.isRead() && Eb.Ord == Mode::SeqCst);
    if (Critical && !Hb.get(A, B))
      Forced = false;
  });
  return Forced;
}

} // namespace

bool jsmm::isSyntacticallyDeadCounterExample(const CandidateExecution &CE,
                                             ModelSpec Spec) {
  assert(CE.hasTot() && "syntactic deadness inspects a concrete tot");
  if (isValid(CE, Spec))
    return false;
  return criticalEdgesAreHbForced(CE, CE.Tot, CE.derived(Spec.Sw).Hb);
}

bool jsmm::existsSyntacticallyDeadTot(const CandidateExecution &CE,
                                      ModelSpec Spec, Relation *TotOut) {
  const DerivedTriple &D = CE.derived(Spec.Sw);
  // Invalidity through a tot-independent axiom is dead by definition.
  if (!checkTotIndependentAxioms(CE, D, Spec)) {
    if (D.Hb.isAcyclic()) {
      if (TotOut)
        *TotOut = totalOrderFromSequence(D.Hb.topologicalOrder(),
                                         CE.numEvents());
      return true;
    }
    return false; // no well-formed tot at all
  }
  if (!D.Hb.isAcyclic())
    return false;
  bool Found = false;
  forEachLinearExtension(
      D.Hb, CE.allEventsMask(), [&](const std::vector<unsigned> &Seq) {
        Relation Tot = totalOrderFromSequence(Seq, CE.numEvents());
        if (!checkScAtomics(CE, D, Spec.Sc, Tot) &&
            criticalEdgesAreHbForced(CE, Tot, D.Hb)) {
          Found = true;
          if (TotOut)
            *TotOut = Tot;
          return false;
        }
        return true;
      });
  return Found;
}

bool jsmm::isSemanticallyDead(const CandidateExecution &CE, ModelSpec Spec) {
  return isInvalidForAllTot(CE, Spec);
}
