//===- search/Deadness.cpp ------------------------------------------------===//

#include "search/Deadness.h"

#include "solver/ScConstraints.h"

using namespace jsmm;

namespace {

/// Critical edge classes: W_SC -> W_any and W_any -> R_SC (the tot edges
/// the Sequentially Consistent Atomics shapes are built from).
bool criticalEdgesAreHbForced(const CandidateExecution &CE,
                              const Relation &Tot, const Relation &Hb) {
  bool Forced = true;
  Tot.forEachPair([&](unsigned A, unsigned B) {
    if (!Forced)
      return;
    const Event &Ea = CE.Events[A];
    const Event &Eb = CE.Events[B];
    bool Critical =
        (Ea.isWrite() && Ea.Ord == Mode::SeqCst && Eb.isWrite()) ||
        (Ea.isWrite() && Eb.isRead() && Eb.Ord == Mode::SeqCst);
    if (Critical && !Hb.get(A, B))
      Forced = false;
  });
  return Forced;
}

} // namespace

bool jsmm::isSyntacticallyDeadCounterExample(const CandidateExecution &CE,
                                             ModelSpec Spec) {
  assert(CE.hasTot() && "syntactic deadness inspects a concrete tot");
  if (isValid(CE, Spec))
    return false;
  return criticalEdgesAreHbForced(CE, CE.Tot, CE.derived(Spec.Sw).Hb);
}

bool jsmm::existsSyntacticallyDeadTot(const CandidateExecution &CE,
                                      ModelSpec Spec, Relation *TotOut,
                                      const TotSolver &Solver) {
  const DerivedTriple &D = CE.derived(Spec.Sw);
  // Invalidity through a tot-independent axiom is dead by definition.
  // (The derived hb is transitively closed: irreflexivity is acyclicity.)
  if (!checkTotIndependentAxioms(CE, D, Spec)) {
    if (D.Hb.isIrreflexive()) {
      if (TotOut)
        *TotOut = totalOrderFromSequence(
            lexSmallestExtension(D.Hb, CE.allEventsMask()), CE.numEvents());
      return true;
    }
    return false; // no well-formed tot at all
  }
  if (!D.Hb.isIrreflexive())
    return false;
  // A tot is syntactically dead iff it contains every anti-critical forced
  // edge (criticalEdgesAreHbForced), so the criterion folds into the
  // must-order and the question becomes the plain refutation dual.
  TotProblem P = scAtomicsProblem(CE, D, Spec.Sc);
  addSyntacticDeadnessEdges(CE, D.Hb, P);
  return Solver.existsViolatingExtension(P, TotOut);
}

bool jsmm::existsSyntacticallyDeadTot(const CandidateExecution &CE,
                                      ModelSpec Spec, Relation *TotOut) {
  return existsSyntacticallyDeadTot(CE, Spec, TotOut, defaultTotSolver());
}

bool jsmm::isSemanticallyDead(const CandidateExecution &CE, ModelSpec Spec,
                              const TotSolver &Solver) {
  return isInvalidForAllTot(CE, Spec, Solver);
}

bool jsmm::isSemanticallyDead(const CandidateExecution &CE, ModelSpec Spec) {
  return isInvalidForAllTot(CE, Spec);
}
