//===- search/Deadness.h - Deadness criteria for counter-examples ---------===//
///
/// \file
/// Counter-example deadness (§5.2). A naive search for compilation
/// counter-examples — "a JS-invalid execution translation-related to an
/// ARM-consistent one" — yields spurious results like Fig. 11, where a
/// different choice of the (existentially quantified) total order would
/// make the JS execution valid. A real counter-example must be *dead*: not
/// rescuable by permuting tot.
///
/// Two criteria are provided:
///
///   - the *exact semantic* criterion ("invalid for every tot"), which the
///     paper calls computationally infeasible in Alloy but which the C++
///     enumerator decides directly at litmus-test sizes;
///   - the *syntactic* criterion of Wickerson et al., as instantiated for
///     JavaScript by the paper: an invalidating tot is dead when its
///     W_SC→W and W→R_SC edges are all forced by happens-before (so every
///     other tot ⊇ hb preserves them and the violating shape survives).
///
//===----------------------------------------------------------------------===//

#ifndef JSMM_SEARCH_DEADNESS_H
#define JSMM_SEARCH_DEADNESS_H

#include "core/Validity.h"

namespace jsmm {

/// \returns true if \p CE (with its Tot witness) is invalid under \p Spec
/// and all of the Tot's critical edges (W_SC -> W and W -> R_SC) are
/// hb-forced — the syntactic deadness approximation.
bool isSyntacticallyDeadCounterExample(const CandidateExecution &CE,
                                       ModelSpec Spec);

/// \returns true if some tot makes \p CE an (invalid, syntactically dead)
/// counter-example; fills \p TotOut with the witnessing tot if non-null.
/// The criterion "every critical tot edge is hb-forced" is encoded as
/// forced must-edges on the solver problem (a critical pair hb does not
/// force must be ordered the other way), so any TotSolver decides it.
bool existsSyntacticallyDeadTot(const CandidateExecution &CE, ModelSpec Spec,
                                Relation *TotOut, const TotSolver &Solver);
bool existsSyntacticallyDeadTot(const CandidateExecution &CE, ModelSpec Spec,
                                Relation *TotOut = nullptr);

/// The exact semantic criterion: invalid under every tot (equivalent to
/// isInvalidForAllTot, re-exported here under the Wickerson vocabulary).
bool isSemanticallyDead(const CandidateExecution &CE, ModelSpec Spec,
                        const TotSolver &Solver);
bool isSemanticallyDead(const CandidateExecution &CE, ModelSpec Spec);

} // namespace jsmm

#endif // JSMM_SEARCH_DEADNESS_H
