//===- search/SkeletonSearch.h - Counter-example search (Alloy substitute) ===//
///
/// \file
/// Bounded counter-example search over candidate-execution skeletons, the
/// C++ stand-in for the paper's Memalloy-style Alloy searches (§5):
///
///   - §5.1/5.2: find an execution pair (ExecJS, ExecARM), related by the
///     compilation translation, with ExecARM consistent in the mixed-size
///     ARMv8 model and ExecJS *dead*-invalid in JavaScript — a compilation
///     counter-example. With the original model this reproduces the Fig. 6
///     shape at 6 events / 2 byte locations.
///   - §5.3: with the revised model, verify no counter-example exists up to
///     the bound, and model-check the tot construction used by the Coq
///     proof.
///   - §5.4: find valid, data-race-free, non-sequentially-consistent
///     executions — SC-DRF counter-examples (Fig. 8 at 4 events / 1
///     location, in the original model).
///
/// A skeleton assigns each event a thread (canonically, a restricted-growth
/// assignment), a kind (write/read), a mode (SeqCst/Unordered) and a
/// single-byte location; writes write distinct values; sequenced-before
/// follows event order within each thread; the Init event covers all
/// locations. The JS and ARM sides share events one-to-one through the
/// §5.1 scheme (SC -> acquire/release, Un -> plain).
///
//===----------------------------------------------------------------------===//

#ifndef JSMM_SEARCH_SKELETONSEARCH_H
#define JSMM_SEARCH_SKELETONSEARCH_H

#include "armv8/ArmModel.h"
#include "core/Validity.h"
#include "search/Deadness.h"

#include <functional>
#include <optional>

namespace jsmm {

/// Bounds and model configuration for the searches.
struct SearchConfig {
  unsigned MinEvents = 2;
  unsigned MaxEvents = 6; ///< access events, excluding Init
  unsigned MaxThreads = 2;
  unsigned NumLocs = 2;   ///< single-byte locations
  ModelSpec Js = ModelSpec::original();
  enum class DeadnessMode { None, Syntactic, Semantic } Deadness =
      DeadnessMode::Semantic;
  uint64_t MaxCandidates = 0; ///< rbf-complete candidate budget; 0 = no cap
  /// Order solver deciding the per-candidate validity/deadness questions
  /// (empty = process default).
  SolverConfig Solver;
  /// Worker threads sharding the shape outer loop of the searches
  /// (searchArmCompilationCex, searchScDrfCex, boundedCompilationCheck);
  /// 0 = one per hardware thread. In unbudgeted runs (MaxCandidates == 0)
  /// the search results are deterministic for every thread count — the hit
  /// the sequential enumeration would find first is returned. With a
  /// budget AND multiple workers, the cut-off point depends on scheduling,
  /// so which hit (if any) is found can vary; the effort counters in
  /// SearchStats are likewise exact only single-threaded when a budget or
  /// an early stop cuts the sweep short. forEachSkeletonCandidate itself
  /// always runs sequentially — its visitation order is part of the API.
  unsigned Threads = 1;

  /// Skip candidates in which some SeqCst read reads only Init bytes.
  /// Such candidates acquire an Init synchronizes-with edge (Fig. 3's
  /// special case), whose forced tot edges the paper's *syntactic*
  /// deadness criterion cannot certify — so the Alloy search of §5.2 never
  /// reports them. With the exact semantic criterion (affordable here)
  /// they surface as legitimate counter-examples at only 4 events; setting
  /// this flag reproduces the paper's 6-event minimum instead.
  bool ExcludeInitSynchronization = false;
};

/// A found counter-example.
struct SkeletonCex {
  CandidateExecution Js; ///< carries a tot for None/Syntactic modes
  ArmExecution Arm;      ///< a consistent coherence witness (compile search)
  unsigned NumEvents = 0;
  unsigned NumLocs = 0;
};

/// Search effort counters.
struct SearchStats {
  uint64_t Skeletons = 0;
  uint64_t RbfCandidates = 0;
  uint64_t ArmConsistencyChecks = 0;
  bool BudgetExhausted = false;
};

/// Enumerates every rbf-complete skeleton candidate within the bounds,
/// presenting the JS execution (no tot) and its ARM twin (no coherence).
/// \p Visit returns false to stop. \returns false if stopped early.
bool forEachSkeletonCandidate(
    const SearchConfig &Cfg,
    const std::function<bool(const CandidateExecution &, const ArmExecution &)>
        &Visit,
    SearchStats *Stats = nullptr);

/// \returns true if some granule coherence order makes \p X consistent;
/// fills \p Witness (complete with co) if non-null.
bool armConsistentForSomeCo(const ArmExecution &X,
                            ArmExecution *Witness = nullptr);

/// \returns true if some tot makes \p CE *invalid* under \p Spec (used by
/// the naive search mode); fills \p TotOut if non-null. \p Solver selects
/// the order solver (empty = process default).
bool existsInvalidTot(const CandidateExecution &CE, ModelSpec Spec,
                      Relation *TotOut = nullptr,
                      SolverConfig Solver = SolverConfig());

/// §5.1/5.2: searches for a JS->ARMv8 compilation counter-example.
std::optional<SkeletonCex>
searchArmCompilationCex(const SearchConfig &Cfg, SearchStats *Stats = nullptr);

/// §5.4: searches for an SC-DRF counter-example (valid + race-free +
/// not sequentially consistent).
std::optional<SkeletonCex> searchScDrfCex(const SearchConfig &Cfg,
                                          SearchStats *Stats = nullptr);

/// §5.3: bounded verification that the tot construction witnesses JS
/// validity for every ARM-consistent execution within the bounds.
struct BoundedCompilationReport {
  uint64_t Skeletons = 0;
  uint64_t RbfCandidates = 0;
  uint64_t ArmConsistentExecutions = 0;
  uint64_t ConstructionFailures = 0;
  std::optional<SkeletonCex> FirstFailure;
  bool holds() const { return ConstructionFailures == 0; }
};
BoundedCompilationReport boundedCompilationCheck(const SearchConfig &Cfg);

} // namespace jsmm

#endif // JSMM_SEARCH_SKELETONSEARCH_H
