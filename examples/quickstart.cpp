//===- examples/quickstart.cpp - First steps with the jsmm library --------===//
///
/// \file
/// Builds the paper's Fig. 1 message-passing program with the litmus API,
/// asks the JavaScript memory model which outcomes it allows, and inspects
/// one witnessing execution. Start here.
///
/// Run:  build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "exec/Enumerator.h"
#include "litmus/Program.h"

#include <iostream>

using namespace jsmm;

int main() {
  // x = new Int32Array(new SharedArrayBuffer(1024));
  Program P(1024);
  P.Name = "message-passing";

  // Thread 0:  x[0] = 3;  Atomics.store(x, 1, 5);
  ThreadBuilder T0 = P.thread();
  T0.store(Acc::u32(0), 3);
  T0.store(Acc::u32(4).sc(), 5);

  // Thread 1:  r0 = Atomics.load(x, 1);  if (r0 == 5) r1 = x[0];
  ThreadBuilder T1 = P.thread();
  Reg R0 = T1.load(Acc::u32(4).sc());
  T1.ifEq(R0, 5, [&](ThreadBuilder &B) { B.load(Acc::u32(0)); });

  // Which outcomes does the (revised, TC39-adopted) model allow?
  EnumerationResult R = enumerateOutcomes(P, ModelSpec::revised());

  std::cout << "Program: " << P.Name << "\n"
            << "Allowed outcomes under the revised JavaScript model:\n";
  for (const auto &[O, Witness] : R.Allowed) {
    (void)Witness;
    std::cout << "  " << O.toString() << "\n";
  }
  std::cout << "(" << R.CandidatesConsidered
            << " candidate executions were examined)\n\n";

  // The guarantee: if the flag is seen (r0 = 5), the message must be seen
  // too (r1 = 3). The stale outcome is not in the allowed set.
  Outcome Stale;
  Stale.add(1, 0, 5);
  Stale.add(1, 1, 0);
  std::cout << "Stale outcome " << Stale.toString() << " allowed? "
            << (R.allows(Stale) ? "yes (?!)" : "no — the atomics "
                                               "synchronize")
            << "\n\n";

  // Inspect the witnessing execution of the complete handoff, including
  // its total-order witness.
  Outcome Complete;
  Complete.add(1, 0, 5);
  Complete.add(1, 1, 3);
  auto It = R.Allowed.find(Complete);
  if (It != R.Allowed.end()) {
    std::cout << "A valid candidate execution justifying "
              << Complete.toString() << ":\n"
              << It->second.toString();
  }
  return 0;
}
