//===- examples/waitnotify_demo.cpp - Atomics.wait/notify semantics (§7) --===//
///
/// \file
/// Demonstrates the thread-suspension correction: the Fig. 13 producer/
/// consumer handoff behaves intuitively only once wait/notify critical
/// sections contribute synchronization edges to the memory model.
///
/// Run:  build/examples/waitnotify_demo
///
//===----------------------------------------------------------------------===//

#include "waitnotify/WaitNotify.h"

#include <iostream>

using namespace jsmm;

namespace {

void show(const char *Title, const WnResult &R) {
  std::cout << Title << "\n";
  for (const std::string &O : R.AllowedOutcomes)
    std::cout << "    " << O << "\n";
  std::cout << "    (termination guaranteed: "
            << (R.allowsStuckThread() ? "NO" : "yes") << ")\n\n";
}

} // namespace

int main() {
  std::cout << "Fig. 13a:\n"
            << "  Thread 0: Atomics.wait(x,0,0); r0 = Atomics.load(x,0)\n"
            << "  Thread 1: Atomics.store(x,0,42); r1 = "
               "Atomics.notify(x,0)\n\n";

  WnProgram P;
  P.BufferSize = 4;
  unsigned T0 = P.thread();
  P.wait(T0, 0, 0);
  P.load(T0, 0, Mode::SeqCst);
  unsigned T1 = P.thread();
  P.store(T1, 0, 42, Mode::SeqCst);
  P.notify(T1, 0);

  show("Without the fix (wait/notify invisible to the model):",
       enumerateWaitNotify(P, ModelSpec::revised(), false));
  show("With the fix (wake + critical-section asw edges):",
       enumerateWaitNotify(P, ModelSpec::revised(), true));

  // A two-consumer variant: one notify wakes both.
  std::cout << "Two waiters, one notify:\n";
  WnProgram Q;
  Q.BufferSize = 4;
  unsigned A = Q.thread();
  Q.wait(A, 0, 0);
  unsigned B = Q.thread();
  Q.wait(B, 0, 0);
  unsigned C = Q.thread();
  Q.store(C, 0, 7, Mode::SeqCst);
  Q.notify(C, 0);
  show("  outcomes (notify count is thread 2's register):",
       enumerateWaitNotify(Q, ModelSpec::revised(), true));
  return 0;
}
