//===- examples/armv8_compile_bug.cpp - The §3.1 discovery, end to end ----===//
///
/// \file
/// Walks through the paper's headline bug: compile the Fig. 6 program with
/// the standard (V8) scheme, enumerate the ARMv8 behaviours of the result,
/// and find one the JavaScript specification forbids. Then apply the
/// TC39-adopted fix and watch the gap close.
///
/// Run:  build/examples/armv8_compile_bug
///
//===----------------------------------------------------------------------===//

#include "armv8/ArmEnumerator.h"
#include "compile/TotConstruction.h"
#include "exec/Enumerator.h"
#include "paper/Figures.h"

#include <iostream>

using namespace jsmm;

int main() {
  Program P = paper::fig6Program();
  Outcome Bad = paper::fig6Outcome();

  std::cout << "The Fig. 6 program:\n"
            << "  Thread 0: Atomics.store(b,0,1); r1 = Atomics.load(b,1)\n"
            << "  Thread 1: Atomics.store(b,1,1); Atomics.store(b,1,2);\n"
            << "            b[0] = 2; r2 = Atomics.load(b,0)\n\n";

  // 1. The JavaScript specification (10th ed.) forbids r1 = 1 ∧ r2 = 1.
  EnumerationResult JsOrig = enumerateOutcomes(P, ModelSpec::original());
  std::cout << "1. Original JS model allows " << Bad.toString() << "? "
            << (JsOrig.allows(Bad) ? "yes" : "NO — forbidden") << "\n";

  // 2. Compile with the C++-SC scheme: SC -> ldar/stlr, Un -> ldr/str.
  CompiledProgram CP = compileToArm(P);
  ArmEnumerationResult Arm = enumerateArmOutcomes(CP.Arm);
  std::cout << "2. ARMv8 allows it for the compiled program? "
            << (Arm.allows(Bad) ? "YES — the scheme is broken" : "no")
            << "\n";

  // 3. Exhibit the offending ARM execution and its JavaScript translation.
  auto It = Arm.Allowed.find(Bad);
  if (It != Arm.Allowed.end()) {
    std::cout << "\n   The architecturally-allowed execution (Fig. 6b):\n"
              << It->second.toString();
    TranslationResult TR = translateExecution(It->second, CP);
    std::cout << "   ...translates to the JS candidate (Fig. 6a):\n"
              << TR.Js.toString();
    std::cout << "   JS-valid for some tot [original]? "
              << (isValidForSomeTot(TR.Js, ModelSpec::original())
                      ? "yes"
                      : "no — dead for every total order")
              << "\n";
  }

  // 4. The fix: weaken Sequentially Consistent Atomics (Fig. 10).
  EnumerationResult JsRev = enumerateOutcomes(P, ModelSpec::revised());
  std::cout << "\n3. Revised JS model allows it? "
            << (JsRev.allows(Bad) ? "yes — the scheme is supported again"
                                  : "no")
            << "\n";

  // 5. And the whole-scheme verdicts.
  CompileCheckResult Orig =
      checkCompilationForProgram(P, ModelSpec::original());
  CompileCheckResult Rev = checkCompilationForProgram(P, ModelSpec::revised());
  std::cout << "\n4. Compilation-correctness check on this program:\n"
            << "   original model: " << Orig.ExistentiallyValid << "/"
            << Orig.ArmConsistent << " ARM executions justified -> "
            << (Orig.holds() ? "holds" : "BROKEN") << "\n"
            << "   revised model:  " << Rev.ExistentiallyValid << "/"
            << Rev.ArmConsistent << " justified ("
            << Rev.ConstructionWitnessed
            << " via the proof's tot construction) -> "
            << (Rev.holds() ? "holds" : "broken") << "\n";
  return 0;
}
