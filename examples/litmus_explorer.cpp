//===- examples/litmus_explorer.cpp - Litmus verdicts across models -------===//
///
/// \file
/// Runs the classic litmus shapes (MP, SB, LB, CoRR, and the paper's
/// figures) through every engine backend side by side — JavaScript
/// original and revised, the compiled mixed-size ARMv8 model, and the six
/// Thm 6.3 target architectures (x86-TSO, uni-size ARMv8, ARMv7, Power,
/// RISC-V, ImmLite) under their compilation schemes — and prints a verdict
/// table for the designated weak outcome of each test. This is the jsmm
/// equivalent of a herd7 session across a whole model zoo; see
/// tests/differential_test.cpp for the pinned version of this table.
///
/// The table is produced through the batch service (service/LitmusService):
/// each shape is submitted as a "differential" job, the batch fans out over
/// the worker pool, and the verdict cells are read off the per-backend
/// allowed sets of the results — the same path `jsmm-batch` serves.
///
/// Run:  build/example_litmus_explorer [--solver=brute|propagate|sat]
///                                     [--workers=N] [--reduce=on|off]
///
/// The solver flag selects the tot-order decider behind every JavaScript
/// verdict (default: the constraint-propagation solver); the brute
/// linear-extension oracle is kept for differential runs. --workers sizes
/// the service pool (0 = one per hardware thread); the table is identical
/// for every worker count. --reduce toggles the equivalence-aware
/// enumeration (default on; the table is identical either way — it only
/// changes how much of the candidate space is walked).
///
//===----------------------------------------------------------------------===//

#include "engine/TargetModel.h"
#include "obs/Obs.h"
#include "paper/Figures.h"
#include "service/LitmusService.h"
#include "solver/TotSolver.h"
#include "support/Str.h"

#include <iostream>
#include <memory>

using namespace jsmm;

namespace {

struct LitmusCase {
  std::string Name;
  Program P;
  Outcome Weak; ///< the outcome whose verdict is interesting
};

std::vector<LitmusCase> cases() {
  std::vector<LitmusCase> Out;

  {
    Program P(8);
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0), 1);
    T0.store(Acc::u32(4), 1);
    ThreadBuilder T1 = P.thread();
    T1.load(Acc::u32(4));
    T1.load(Acc::u32(0));
    Out.push_back({"MP (all Unordered)", P, paper::outcome({{1, 0, 1},
                                                            {1, 1, 0}})});
  }
  {
    Program P(8);
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0), 1);
    T0.store(Acc::u32(4).sc(), 1);
    ThreadBuilder T1 = P.thread();
    T1.load(Acc::u32(4).sc());
    T1.load(Acc::u32(0));
    Out.push_back({"MP (SC flag)", P, paper::outcome({{1, 0, 1},
                                                      {1, 1, 0}})});
  }
  {
    Program P(8);
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0).sc(), 1);
    T0.load(Acc::u32(4).sc());
    ThreadBuilder T1 = P.thread();
    T1.store(Acc::u32(4).sc(), 1);
    T1.load(Acc::u32(0).sc());
    Out.push_back({"SB (all SC)", P, paper::outcome({{0, 0, 0},
                                                     {1, 0, 0}})});
  }
  {
    Program P(8);
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0), 1);
    T0.load(Acc::u32(4));
    ThreadBuilder T1 = P.thread();
    T1.store(Acc::u32(4), 1);
    T1.load(Acc::u32(0));
    Out.push_back({"SB (all Unordered)", P, paper::outcome({{0, 0, 0},
                                                            {1, 0, 0}})});
  }
  {
    Program P(8);
    ThreadBuilder T0 = P.thread();
    T0.load(Acc::u32(0));
    T0.store(Acc::u32(4), 1);
    ThreadBuilder T1 = P.thread();
    T1.load(Acc::u32(4));
    T1.store(Acc::u32(0), 1);
    Out.push_back({"LB (all Unordered)", P, paper::outcome({{0, 0, 1},
                                                            {1, 0, 1}})});
  }
  {
    Program P(4);
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0), 1);
    ThreadBuilder T1 = P.thread();
    T1.load(Acc::u32(0));
    T1.load(Acc::u32(0));
    Out.push_back({"CoRR (Unordered)", P, paper::outcome({{1, 0, 1},
                                                          {1, 1, 0}})});
  }
  Out.push_back({"Fig. 6 (ARMv8 violation)", paper::fig6Program(),
                 paper::fig6Outcome()});
  Out.push_back({"Fig. 8 (SC-DRF violation)", paper::fig8Program(),
                 paper::fig8Outcome()});
  return Out;
}

/// "A" when \p Backend has a verdict and allows the outcome, "-" when it
/// forbids it, "." when the backend has no column (not uni-size
/// expressible).
std::string mark(const LitmusJobResult &R, const std::string &Backend,
                 const std::string &Outcome) {
  if (!R.AllowedByBackend.count(Backend))
    return ".";
  return R.allows(Backend, Outcome) ? "A" : "-";
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Workers = 1;
  bool Reduce = true;
  bool Stats = false;
  std::string TracePath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--stats") {
      Stats = true;
    } else if (Arg.rfind("--trace=", 0) == 0) {
      TracePath = Arg.substr(8);
      if (TracePath.empty()) {
        std::cerr << "litmus_explorer: --trace needs a file path\n";
        return 2;
      }
    } else if (Arg.rfind("--reduce=", 0) == 0) {
      std::string Val = Arg.substr(9);
      if (Val != "on" && Val != "off") {
        std::cerr << "litmus_explorer: --reduce takes 'on' or 'off', not '"
                  << Val << "'\n";
        return 2;
      }
      Reduce = Val == "on";
    } else if (Arg.rfind("--solver=", 0) == 0) {
      std::optional<SolverKind> Kind = solverKindByName(Arg.substr(9));
      if (!Kind) {
        std::cerr << "litmus_explorer: unknown solver '" << Arg.substr(9)
                  << "'; pick 'brute', 'propagate' or 'sat'\n";
        return 2;
      }
      setDefaultSolverKind(*Kind);
    } else if (Arg.rfind("--workers=", 0) == 0) {
      std::optional<unsigned> N =
          parseCliUnsigned("litmus_explorer", "--workers", Arg.substr(10));
      if (!N)
        return 2;
      Workers = *N;
    } else {
      std::cerr << "usage: litmus_explorer [--solver=brute|propagate|sat] "
                   "[--workers=N] [--reduce=on|off] [--stats] "
                   "[--trace=FILE]\n"
                   "  --stats       service/solver telemetry summary after "
                   "the table\n"
                   "  --trace=FILE  append JSONL trace events to FILE\n";
      return 2;
    }
  }

  // One differential job per shape, batched through the service.
  std::vector<LitmusCase> Cases = cases();
  std::vector<LitmusJob> Jobs;
  for (const LitmusCase &C : Cases) {
    LitmusJob J;
    J.Name = C.Name;
    LitmusFile F;
    F.P = C.P;
    J.Litmus = emitLitmus(F);
    J.Model = "differential";
    J.Reduce = Reduce;
    Jobs.push_back(std::move(J));
  }
  ServiceConfig Cfg;
  Cfg.Workers = Workers;
  LitmusService Service(Cfg);

  if (Stats)
    obs::setMetricsEnabled(true);
  std::unique_ptr<obs::TraceSink> Trace;
  if (!TracePath.empty()) {
    std::string TraceError;
    Trace = obs::TraceSink::open(TracePath, &TraceError);
    if (!Trace) {
      std::cerr << "litmus_explorer: " << TraceError << "\n";
      return 2;
    }
    obs::setTrace(Trace.get());
  }

  std::vector<LitmusJobResult> Results = Service.run(Jobs);
  obs::setTrace(nullptr);

  std::cout << "Verdicts computed with the '"
            << solverKindName(defaultSolverKind())
            << "' tot-order solver, through the batch service ("
            << Service.effectiveWorkers() << " workers, reduce "
            << (Reduce ? "on" : "off") << ").\n";
  std::cout << "Verdict of each test's weak outcome per backend:\n"
            << "  A = allowed, - = forbidden, . = not expressible uni-size\n"
            << "  (target backends compile the uni-size fragment: "
               "straight-line, uniform widths)\n\n";
  std::cout << padRight("test", 28) << padRight("weak outcome", 22)
            << padRight("js-orig", 9) << padRight("js-rev", 8)
            << padRight("armv8", 7);
  for (const TargetModel &M : TargetModel::all())
    std::cout << padRight(M.name(), std::string(M.name()).size() + 2);
  std::cout << "\n" << std::string(127, '-') << "\n";

  bool AllOk = true;
  for (size_t I = 0; I < Cases.size(); ++I) {
    const LitmusJobResult &R = Results[I];
    std::string Weak = Cases[I].Weak.toString();
    std::cout << padRight(Cases[I].Name, 28) << padRight(Weak, 22);
    if (!R.ok()) {
      AllOk = false;
      std::cout << jobStatusName(R.Status) << ": " << R.Error << "\n";
      continue;
    }
    std::cout << padRight(mark(R, "js-original", Weak), 9)
              << padRight(mark(R, "js-revised", Weak), 8)
              << padRight(mark(R, "armv8", Weak), 7);
    for (const TargetModel &M : TargetModel::all())
      std::cout << padRight(mark(R, M.name(), Weak),
                            std::string(M.name()).size() + 2);
    std::cout << "\n";
  }
  std::cout << "\nColumns where a compiled backend shows A while js-orig "
               "shows - mark outcomes\nthe original model could not absorb; "
               "Fig. 6's armv8/armv8-uni cells are exactly\nthe paper's "
               "\xC2\xA7" "3.1 discovery (repaired by the revised column). "
               "The differential suite\n(tests/differential_test.cpp) pins "
               "this table across the full corpus.\n";
  if (Stats) {
    LitmusService::CacheStats CS = Service.cacheStats();
    obs::MetricsRegistry &Reg = obs::registry();
    obs::LatencyHistogram &H = Reg.histogram("service.job_wall_us");
    uint64_t Lookups = CS.Hits + CS.Misses;
    std::cout << "\nstats: cache " << CS.Hits << " hits / " << CS.Misses
              << " misses";
    if (Lookups)
      std::cout << " (" << (100 * CS.Hits / Lookups) << "% hit rate)";
    std::cout << "\nstats: job wall p50 " << H.percentileMicros(50)
              << " us, p90 " << H.percentileMicros(90) << " us, p99 "
              << H.percentileMicros(99) << " us, max " << H.maxMicros()
              << " us\n"
              << "stats: solver queries "
              << Reg.counter("solver.queries").value()
              << ", candidates considered "
              << Reg.counter("engine.candidates_considered").value() << "\n";
  }
  return AllOk ? 0 : 1;
}
