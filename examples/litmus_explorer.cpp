//===- examples/litmus_explorer.cpp - Litmus verdicts across models -------===//
///
/// \file
/// Runs the classic litmus shapes (MP, SB, LB, CoRR, and the paper's
/// figures) through every engine backend side by side — JavaScript
/// original and revised, the compiled mixed-size ARMv8 model, and the six
/// Thm 6.3 target architectures (x86-TSO, uni-size ARMv8, ARMv7, Power,
/// RISC-V, ImmLite) under their compilation schemes — and prints a verdict
/// table for the designated weak outcome of each test. This is the jsmm
/// equivalent of a herd7 session across a whole model zoo; see
/// tests/differential_test.cpp for the pinned version of this table.
///
/// Run:  build/example_litmus_explorer [--solver=brute|propagate]
///
/// The solver flag selects the tot-order decider behind every JavaScript
/// verdict (default: the constraint-propagation solver); the brute
/// linear-extension oracle is kept for differential runs.
///
//===----------------------------------------------------------------------===//

#include "compile/Compile.h"
#include "engine/ExecutionEngine.h"
#include "paper/Figures.h"
#include "support/Str.h"

#include <cstring>
#include <iostream>

using namespace jsmm;

namespace {

struct LitmusCase {
  std::string Name;
  Program P;
  Outcome Weak; ///< the outcome whose verdict is interesting
};

std::vector<LitmusCase> cases() {
  std::vector<LitmusCase> Out;

  {
    Program P(8);
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0), 1);
    T0.store(Acc::u32(4), 1);
    ThreadBuilder T1 = P.thread();
    T1.load(Acc::u32(4));
    T1.load(Acc::u32(0));
    Out.push_back({"MP (all Unordered)", P, paper::outcome({{1, 0, 1},
                                                            {1, 1, 0}})});
  }
  {
    Program P(8);
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0), 1);
    T0.store(Acc::u32(4).sc(), 1);
    ThreadBuilder T1 = P.thread();
    T1.load(Acc::u32(4).sc());
    T1.load(Acc::u32(0));
    Out.push_back({"MP (SC flag)", P, paper::outcome({{1, 0, 1},
                                                      {1, 1, 0}})});
  }
  {
    Program P(8);
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0).sc(), 1);
    T0.load(Acc::u32(4).sc());
    ThreadBuilder T1 = P.thread();
    T1.store(Acc::u32(4).sc(), 1);
    T1.load(Acc::u32(0).sc());
    Out.push_back({"SB (all SC)", P, paper::outcome({{0, 0, 0},
                                                     {1, 0, 0}})});
  }
  {
    Program P(8);
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0), 1);
    T0.load(Acc::u32(4));
    ThreadBuilder T1 = P.thread();
    T1.store(Acc::u32(4), 1);
    T1.load(Acc::u32(0));
    Out.push_back({"SB (all Unordered)", P, paper::outcome({{0, 0, 0},
                                                            {1, 0, 0}})});
  }
  {
    Program P(8);
    ThreadBuilder T0 = P.thread();
    T0.load(Acc::u32(0));
    T0.store(Acc::u32(4), 1);
    ThreadBuilder T1 = P.thread();
    T1.load(Acc::u32(4));
    T1.store(Acc::u32(0), 1);
    Out.push_back({"LB (all Unordered)", P, paper::outcome({{0, 0, 1},
                                                            {1, 0, 1}})});
  }
  {
    Program P(4);
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0), 1);
    ThreadBuilder T1 = P.thread();
    T1.load(Acc::u32(0));
    T1.load(Acc::u32(0));
    Out.push_back({"CoRR (Unordered)", P, paper::outcome({{1, 0, 1},
                                                          {1, 1, 0}})});
  }
  Out.push_back({"Fig. 6 (ARMv8 violation)", paper::fig6Program(),
                 paper::fig6Outcome()});
  Out.push_back({"Fig. 8 (SC-DRF violation)", paper::fig8Program(),
                 paper::fig8Outcome()});
  return Out;
}

const char *mark(bool Allowed) { return Allowed ? "A" : "-"; }

} // namespace

int main(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--solver=", 0) == 0) {
      std::optional<SolverKind> Kind = solverKindByName(Arg.substr(9));
      if (!Kind) {
        std::cerr << "litmus_explorer: unknown solver '" << Arg.substr(9)
                  << "'; pick 'brute' or 'propagate'\n";
        return 2;
      }
      setDefaultSolverKind(*Kind);
    } else {
      std::cerr << "usage: litmus_explorer [--solver=brute|propagate]\n";
      return 2;
    }
  }
  ExecutionEngine Engine;
  std::cout << "Verdicts computed with the '"
            << solverKindName(defaultSolverKind())
            << "' tot-order solver.\n";
  std::cout << "Verdict of each test's weak outcome per backend:\n"
            << "  A = allowed, - = forbidden, . = not expressible uni-size\n"
            << "  (target backends compile the uni-size fragment: "
               "straight-line, uniform widths)\n\n";
  std::cout << padRight("test", 28) << padRight("weak outcome", 22)
            << padRight("js-orig", 9) << padRight("js-rev", 8)
            << padRight("armv8", 7);
  for (const TargetModel &M : TargetModel::all())
    std::cout << padRight(M.name(), std::string(M.name()).size() + 2);
  std::cout << "\n" << std::string(127, '-') << "\n";

  for (const LitmusCase &C : cases()) {
    bool Orig =
        Engine.enumerate(C.P, JsModel(ModelSpec::original())).allows(C.Weak);
    bool Rev =
        Engine.enumerate(C.P, JsModel(ModelSpec::revised())).allows(C.Weak);
    bool Arm =
        Engine.enumerate(compileToArm(C.P).Arm, Armv8Model()).allows(C.Weak);
    std::cout << padRight(C.Name, 28) << padRight(C.Weak.toString(), 22)
              << padRight(mark(Orig), 9) << padRight(mark(Rev), 8)
              << padRight(mark(Arm), 7);
    std::optional<UniProgram> Uni = uniFromProgram(C.P);
    for (const TargetModel &M : TargetModel::all()) {
      std::string Cell =
          Uni ? mark(Engine.enumerate(compileUni(*Uni, M.arch()), M)
                         .allows(C.Weak))
              : ".";
      std::cout << padRight(Cell, std::string(M.name()).size() + 2);
    }
    std::cout << "\n";
  }
  std::cout << "\nColumns where a compiled backend shows A while js-orig "
               "shows - mark outcomes\nthe original model could not absorb; "
               "Fig. 6's armv8/armv8-uni cells are exactly\nthe paper's "
               "\xC2\xA7" "3.1 discovery (repaired by the revised column). "
               "The differential suite\n(tests/differential_test.cpp) pins "
               "this table across the full corpus.\n";
  return 0;
}
