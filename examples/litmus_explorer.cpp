//===- examples/litmus_explorer.cpp - Litmus verdicts across models -------===//
///
/// \file
/// Runs the classic litmus shapes (MP, SB, LB, CoRR, and the paper's
/// figures) through three semantics side by side — JavaScript original,
/// JavaScript revised, and the compiled program on mixed-size ARMv8 — and
/// prints a verdict table for the designated weak outcome of each test.
/// This is the jsmm equivalent of a herd7 session.
///
/// Run:  build/examples/litmus_explorer
///
//===----------------------------------------------------------------------===//

#include "armv8/ArmEnumerator.h"
#include "compile/Compile.h"
#include "exec/Enumerator.h"
#include "paper/Figures.h"
#include "support/Str.h"

#include <iostream>

using namespace jsmm;

namespace {

struct LitmusCase {
  std::string Name;
  Program P;
  Outcome Weak; ///< the outcome whose verdict is interesting
};

std::vector<LitmusCase> cases() {
  std::vector<LitmusCase> Out;

  {
    Program P(8);
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0), 1);
    T0.store(Acc::u32(4), 1);
    ThreadBuilder T1 = P.thread();
    T1.load(Acc::u32(4));
    T1.load(Acc::u32(0));
    Out.push_back({"MP (all Unordered)", P, paper::outcome({{1, 0, 1},
                                                            {1, 1, 0}})});
  }
  {
    Program P(8);
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0), 1);
    T0.store(Acc::u32(4).sc(), 1);
    ThreadBuilder T1 = P.thread();
    T1.load(Acc::u32(4).sc());
    T1.load(Acc::u32(0));
    Out.push_back({"MP (SC flag)", P, paper::outcome({{1, 0, 1},
                                                      {1, 1, 0}})});
  }
  {
    Program P(8);
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0).sc(), 1);
    T0.load(Acc::u32(4).sc());
    ThreadBuilder T1 = P.thread();
    T1.store(Acc::u32(4).sc(), 1);
    T1.load(Acc::u32(0).sc());
    Out.push_back({"SB (all SC)", P, paper::outcome({{0, 0, 0},
                                                     {1, 0, 0}})});
  }
  {
    Program P(8);
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0), 1);
    T0.load(Acc::u32(4));
    ThreadBuilder T1 = P.thread();
    T1.store(Acc::u32(4), 1);
    T1.load(Acc::u32(0));
    Out.push_back({"SB (all Unordered)", P, paper::outcome({{0, 0, 0},
                                                            {1, 0, 0}})});
  }
  {
    Program P(8);
    ThreadBuilder T0 = P.thread();
    T0.load(Acc::u32(0));
    T0.store(Acc::u32(4), 1);
    ThreadBuilder T1 = P.thread();
    T1.load(Acc::u32(4));
    T1.store(Acc::u32(0), 1);
    Out.push_back({"LB (all Unordered)", P, paper::outcome({{0, 0, 1},
                                                            {1, 0, 1}})});
  }
  {
    Program P(4);
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0), 1);
    ThreadBuilder T1 = P.thread();
    T1.load(Acc::u32(0));
    T1.load(Acc::u32(0));
    Out.push_back({"CoRR (Unordered)", P, paper::outcome({{1, 0, 1},
                                                          {1, 1, 0}})});
  }
  Out.push_back({"Fig. 6 (ARMv8 violation)", paper::fig6Program(),
                 paper::fig6Outcome()});
  Out.push_back({"Fig. 8 (SC-DRF violation)", paper::fig8Program(),
                 paper::fig8Outcome()});
  return Out;
}

} // namespace

int main() {
  std::cout << padRight("test", 28) << padRight("weak outcome", 22)
            << padRight("JS-original", 13) << padRight("JS-revised", 13)
            << "ARMv8 (compiled)\n"
            << std::string(92, '-') << "\n";
  for (const LitmusCase &C : cases()) {
    bool Orig = enumerateOutcomes(C.P, ModelSpec::original()).allows(C.Weak);
    bool Rev = enumerateOutcomes(C.P, ModelSpec::revised()).allows(C.Weak);
    bool Arm = enumerateArmOutcomes(compileToArm(C.P).Arm).allows(C.Weak);
    auto Verdict = [](bool Allowed) {
      return Allowed ? std::string("allowed") : std::string("forbidden");
    };
    std::cout << padRight(C.Name, 28) << padRight(C.Weak.toString(), 22)
              << padRight(Verdict(Orig), 13) << padRight(Verdict(Rev), 13)
              << Verdict(Arm) << "\n";
  }
  std::cout << "\nRows where JS forbids but ARMv8 allows mark compilation-"
               "scheme trouble;\nFig. 6's row is exactly the paper's §3.1 "
               "discovery (fixed by the revised column).\n";
  return 0;
}
