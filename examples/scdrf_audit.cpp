//===- examples/scdrf_audit.cpp - Auditing programs for SC-DRF ------------===//
///
/// \file
/// Uses the library as a verification tool: given a litmus program, report
/// whether it is data-race-free and whether all of its allowed behaviours
/// are sequentially consistent — under both the original and the revised
/// model. Demonstrates the Fig. 8 anomaly and a correctly synchronized
/// spinlock-style handoff.
///
/// Run:  build/examples/scdrf_audit
///
//===----------------------------------------------------------------------===//

#include "exec/Enumerator.h"
#include "paper/Figures.h"

#include <iostream>

using namespace jsmm;

namespace {

void audit(const Program &P) {
  std::cout << "== " << P.Name << " ==\n";
  for (ModelSpec Spec : {ModelSpec::original(), ModelSpec::revised()}) {
    ScDrfReport R = checkScDrf(P, Spec);
    std::cout << "  [" << Spec.Name << "] data-race-free: "
              << (R.DataRaceFree ? "yes" : "no")
              << ", all behaviours SC: "
              << (R.AllValidExecutionsSC ? "yes" : "NO")
              << ", SC-DRF: " << (R.holds() ? "holds" : "VIOLATED") << "\n";
    if (R.NonScWitness) {
      std::cout << "  non-SC witness:\n" << R.NonScWitness->toString();
    }
    if (R.RaceWitness && !R.DataRaceFree) {
      auto Races = findDataRaces(*R.RaceWitness, Spec);
      std::cout << "  racing events in one witness:";
      for (auto [A, B] : Races)
        std::cout << " <" << A << "," << B << ">";
      std::cout << "\n";
    }
  }
  std::cout << "\n";
}

} // namespace

int main() {
  // 1. The paper's SC-DRF anomaly (Fig. 8): DRF, yet non-SC under the
  //    original model.
  audit(paper::fig8Program());

  // 2. A lock-style handoff: entirely SC-atomic flag traffic, Unordered
  //    payload. DRF and SC under both models.
  {
    Program P(8);
    P.Name = "guarded-handoff";
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0), 41);
    T0.store(Acc::u32(4).sc(), 1); // unlock
    ThreadBuilder T1 = P.thread();
    Reg L = T1.load(Acc::u32(4).sc()); // try lock
    T1.ifEq(L, 1, [&](ThreadBuilder &B) {
      B.load(Acc::u32(0));
      B.store(Acc::u32(0), 42);
    });
    audit(P);
  }

  // 3. A racy program: SC-DRF is vacuous (the premise fails), and the
  //    audit pinpoints the racing pair.
  {
    Program P(4);
    P.Name = "racy-increment";
    ThreadBuilder T0 = P.thread();
    Reg A = T0.load(Acc::u32(0));
    (void)A;
    T0.store(Acc::u32(0), 1);
    ThreadBuilder T1 = P.thread();
    T1.store(Acc::u32(0), 2);
    audit(P);
  }

  // 4. Mixed-size subtlety: same-range SC atomics never race, but
  //    different-range SC atomics do (Fig. 7's range condition).
  {
    Program P(4);
    P.Name = "mixed-size-sc-race";
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0).sc(), 1);
    ThreadBuilder T1 = P.thread();
    T1.load(Acc::u16(0).sc());
    audit(P);
  }
  return 0;
}
