//===- bench_sec41_flat_validation.cpp - Experiment E6 (§4.1) -------------===//
///
/// \file
/// Regenerates the §4.1 validation experiment: run a diy-generated litmus
/// corpus through the operational simulator (the Flat substitute), collect
/// every operationally-allowed execution, and check that the mixed-size
/// axiomatic ARMv8 model allows each one (soundness).
///
/// Paper row: 11,587 tests, 11,578 complete, 167,014 candidate executions,
/// axiomatic-allows-operational on all of them. Our corpus is smaller (the
/// generator sweeps cycles up to length 4 over a reduced alphabet, in three
/// size variants) but the soundness rate — the actual claim — must be 100%.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "armv8/ArmEnumerator.h"
#include "flatsim/FlatSim.h"
#include "gen/Diy.h"

using namespace jsmm;
using namespace jsmm::bench;

int main(int Argc, char **Argv) {
  // A wider sweep can be requested: bench_sec41_flat_validation [MaxEdges].
  unsigned MaxEdges = Argc > 1 ? std::atoi(Argv[1]) : 4;

  Table T("E6: validating the axiomatic model against the operational one",
          "Watt et al. PLDI 2020, section 4.1");

  DiyConfig Cfg;
  Cfg.MinEdges = 2;
  Cfg.MaxEdges = MaxEdges;
  Cfg.MaxThreads = 4;
  // The full alphabet makes length-4 sweeps slow; use the communication
  // edges plus a representative annotation set.
  Cfg.Alphabet = {EdgeKind::Rfe,      EdgeKind::Fre,     EdgeKind::Coe,
                  EdgeKind::PodRR,    EdgeKind::PodRW,   EdgeKind::PodWR,
                  EdgeKind::PodWW,    EdgeKind::PosWR,   EdgeKind::DmbdRR,
                  EdgeKind::DmbdWW,   EdgeKind::DmbStdWW,
                  EdgeKind::CtrldRW,  EdgeKind::AddrdRR, EdgeKind::DatadRW,
                  EdgeKind::AcqPodRR, EdgeKind::PodRelWW};

  std::vector<DiyTest> Corpus = generateCorpus(Cfg);

  uint64_t Tests = 0, MixedSize = 0, Executions = 0, Sound = 0;
  uint64_t WeakBehavioursConfirmed = 0;
  double Ms = timedMs([&] {
    for (const DiyTest &Test : Corpus) {
      ++Tests;
      if (Test.Variant != SizeVariant::Byte)
        ++MixedSize;
      std::set<std::string> AxOutcomes;
      ArmEnumerationResult Ax = enumerateArmOutcomes(Test.Prog);
      for (const auto &[O, X] : Ax.Allowed) {
        (void)X;
        AxOutcomes.insert(O.toString());
      }
      uint64_t OpOutcomes = 0;
      forEachFlatExecution(
          Test.Prog, [&](const ArmExecution &X, const Outcome &O) {
            ++Executions;
            ++OpOutcomes;
            if (isArmConsistent(X) && AxOutcomes.count(O.toString()))
              ++Sound;
            return true;
          });
      // The axiomatic model being weaker is expected; count tests where it
      // allows strictly more outcomes than the simulator produced.
      if (AxOutcomes.size() > OpOutcomes)
        WeakBehavioursConfirmed++;
    }
  });

  T.row("corpus size (tests)", "11,587 (full diy corpus)",
        std::to_string(Tests), Tests > 100);
  T.row("mixed-size tests", "2,635", std::to_string(MixedSize),
        MixedSize > 30);
  T.row("operational candidate executions", "167,014",
        std::to_string(Executions), Executions > 1000);
  T.row("axiomatic allows every operational execution", "100%",
        std::to_string(Sound) + "/" + std::to_string(Executions),
        Sound == Executions);
  T.note("tests where the axiomatic model is strictly weaker than the "
         "simulator: " +
         std::to_string(WeakBehavioursConfirmed));
  T.note("sweep time: " + std::to_string(Ms) + " ms (cycles up to length " +
         std::to_string(MaxEdges) + ")");

  return T.finish();
}
