//===- bench_service_throughput.cpp - Batch service gate ------------------===//
///
/// \file
/// The reproduction gate of the batch litmus service: runs the full
/// differential corpus as service jobs at 1, 2 and hardware-many workers,
/// checks the batch contract (deterministic submission-order results for
/// every worker count, per-job error isolation, verdict-cache hits on
/// resubmission) and records the jobs/sec throughput. The headline
/// `service_jobs_per_sec` metric is also emitted by bench_perf_engine into
/// BENCH_perf-engine.json, where tools/perf_trend.py gates it against the
/// floor committed in bench/perf_baseline.json.
///
/// Usage: bench_service_throughput [--workers=N]   (N overrides the
/// hardware-many configuration; 0 = one worker per hardware thread)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "service/LitmusService.h"
#include "support/Str.h"

#include <algorithm>

#include <iostream>
#include <sstream>

using namespace jsmm;
using jsmm::bench::timedMs;

namespace {

std::string fingerprintAll(const std::vector<LitmusJobResult> &Results) {
  std::ostringstream Out;
  for (const LitmusJobResult &R : Results) {
    Out << jobStatusName(R.Status) << "|" << R.Name << "|" << R.Error;
    for (const auto &[Backend, Allowed] : R.AllowedByBackend) {
      Out << "|" << Backend << "=";
      for (const std::string &O : Allowed)
        Out << O << ";";
    }
    for (const std::string &S : R.SoundnessViolations)
      Out << "|S:" << S;
    Out << "\n";
  }
  return Out.str();
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned ManyWorkers = 0; // one per hardware thread
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--workers=", 0) == 0) {
      std::optional<unsigned> N = parseCliUnsigned(
          "bench_service_throughput", "--workers", Arg.substr(10));
      if (!N)
        return 2;
      ManyWorkers = *N;
    } else {
      std::cerr << "usage: bench_service_throughput [--workers=N]\n";
      return 2;
    }
  }

  jsmm::bench::Table T("service-throughput",
                       "batch litmus service over the differential corpus: "
                       "determinism, error isolation, cache, jobs/sec");

  std::vector<LitmusJob> Jobs = differentialCorpusJobs();
  T.note("corpus: " + std::to_string(Jobs.size()) +
         " differential jobs (9-backend table each)");

  // Warm-up: first-touch allocation noise out of the timings.
  { LitmusService Warm; Warm.run(Jobs); }

  // Resolve and dedupe the worker configurations up front: on a 1-core
  // runner the hardware-many leg collapses into w1, which would otherwise
  // emit a duplicate metric key and a vacuous determinism check.
  std::vector<unsigned> WorkerCounts;
  for (unsigned Workers : {1u, 2u, ManyWorkers}) {
    ServiceConfig Probe;
    Probe.Workers = Workers;
    unsigned Effective = LitmusService(Probe).effectiveWorkers();
    if (std::find(WorkerCounts.begin(), WorkerCounts.end(), Effective) ==
        WorkerCounts.end())
      WorkerCounts.push_back(Effective);
  }

  double BestJobsPerSec = 0;
  std::string Reference;
  for (unsigned Workers : WorkerCounts) {
    ServiceConfig Cfg;
    Cfg.Workers = Workers;
    Cfg.CacheVerdicts = false; // measure computation, not the cache
    LitmusService Service(Cfg);
    std::vector<LitmusJobResult> Results;
    double Ms = timedMs([&] { Results = Service.run(Jobs); });
    double JobsPerSec = Ms > 0 ? 1000.0 * Jobs.size() / Ms : 0;
    BestJobsPerSec = std::max(BestJobsPerSec, JobsPerSec);
    std::string Label = "w" + std::to_string(Service.effectiveWorkers());
    T.metric("service_jobs_per_sec_" + Label, JobsPerSec, "jobs/s");

    bool AllOk = true;
    for (const LitmusJobResult &R : Results)
      AllOk = AllOk && R.ok();
    T.check("all corpus jobs ok (" + Label + ")", true, AllOk);

    std::string Fp = fingerprintAll(Results);
    if (Reference.empty())
      Reference = Fp;
    else
      T.check("batch results identical to 1-worker run (" + Label + ")",
              true, Fp == Reference);
  }
  T.metric("service_jobs_per_sec", BestJobsPerSec, "jobs/s");

  // Large-program leg: the 65+-event corpus, served through the dynamic
  // relation tier with real verdicts. Same contract as the small corpus —
  // every job ok, byte-identical across worker counts — plus the
  // `large_program_jobs_per_sec` floor gated by tools/perf_trend.py.
  {
    std::vector<LitmusJob> LargeJobs = largeCorpusJobs();
    { LitmusService Warm; Warm.run(LargeJobs); } // warm-up
    double BestLarge = 0;
    std::string LargeReference;
    for (unsigned Workers : WorkerCounts) {
      ServiceConfig Cfg;
      Cfg.Workers = Workers;
      Cfg.CacheVerdicts = false;
      LitmusService Service(Cfg);
      std::vector<LitmusJobResult> Results;
      double Ms = timedMs([&] { Results = Service.run(LargeJobs); });
      if (Ms > 0)
        BestLarge = std::max(BestLarge, 1000.0 * LargeJobs.size() / Ms);
      std::string Label = "w" + std::to_string(Service.effectiveWorkers());
      bool AllOk = true;
      for (const LitmusJobResult &R : Results)
        AllOk = AllOk && R.ok();
      T.check("all 65+-event corpus jobs ok (" + Label + ")", true, AllOk);
      std::string Fp = fingerprintAll(Results);
      if (LargeReference.empty())
        LargeReference = Fp;
      else
        T.check("large batch identical to 1-worker run (" + Label + ")",
                true, Fp == LargeReference);
    }
    T.metric("large_program_jobs_per_sec", BestLarge, "jobs/s");
  }

  // Error isolation: one too-large and one malformed job ride along with a
  // good one; the batch completes with per-job statuses. "Too large" now
  // means beyond the *dynamic* cap (DynRelation::MaxSize events) — the
  // former 71-event flavour of this job is served with real verdicts
  // since the dynamic relation tier landed, and the 301-event flavour
  // since the SAT consistency tier raised the cap to 1024.
  {
    std::string TooLarge = "name big\nbuffer 64\nthread\n";
    for (unsigned I = 0; I < 1100; ++I)
      TooLarge += "  store u32 " + std::to_string(4 * (I % 8)) + " = 1\n";
    std::vector<LitmusJob> Mixed;
    Mixed.push_back({"big", TooLarge, "revised", 1});
    Mixed.push_back({"bad", "thread\n  flurb\n", "revised", 1});
    Mixed.push_back(Jobs[0]);
    ServiceConfig Cfg;
    Cfg.Workers = 2;
    LitmusService Service(Cfg);
    std::vector<LitmusJobResult> Results = Service.run(Mixed);
    T.check("too-large job fails with status too-large", true,
            Results[0].Status == JobStatus::TooLarge);
    T.check("malformed job fails with status parse-error", true,
            Results[1].Status == JobStatus::ParseError);
    T.check("good job unaffected by failing neighbours", true,
            Results[2].ok());
  }

  // Cache: resubmitting the corpus hits for every job.
  {
    LitmusService Service;
    Service.run(Jobs);
    Service.run(Jobs);
    LitmusService::CacheStats Stats = Service.cacheStats();
    T.check("resubmitted corpus served from the verdict cache", true,
            Stats.Hits >= Jobs.size() && Stats.Misses <= Jobs.size());
    T.metric("cache_hits", static_cast<double>(Stats.Hits));
  }

  return T.finish();
}
