//===- bench_fig8_scdrf_violation.cpp - Experiment E3 (Fig. 8) ------------===//
///
/// \file
/// Regenerates the §3.2 SC-DRF violation: the Fig. 8 program is data-race-
/// free, yet the original model admits an outcome no sequential
/// interleaving explains; the revised model restores SC-DRF.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/SeqConsistency.h"
#include "exec/Enumerator.h"
#include "paper/Figures.h"

using namespace jsmm;
using namespace jsmm::bench;
using namespace jsmm::paper;

int main() {
  Table T("E3: the SC-DRF violation",
          "Watt et al. PLDI 2020, Fig. 7/Fig. 8, section 3.2");

  // Candidate-execution level.
  T.check("Fig. 8 execution valid [original]", true,
          isValidForSomeTot(fig8Execution(), ModelSpec::original()));
  T.check("Fig. 8 execution race-free", true,
          isRaceFree(fig8Execution(), ModelSpec::original()));
  T.check("Fig. 8 execution sequentially consistent", false,
          isSequentiallyConsistent(fig8Execution()));
  T.check("Fig. 8 execution valid [revised]", false,
          isValidForSomeTot(fig8Execution(), ModelSpec::revised()));

  // Program level: the SC-DRF property itself.
  ScDrfReport Orig = checkScDrf(fig8Program(), ModelSpec::original());
  T.check("program is data-race-free [original]", true, Orig.DataRaceFree);
  T.check("all valid executions SC [original]", false,
          Orig.AllValidExecutionsSC);
  T.check("SC-DRF violated by the original model", false, Orig.holds());

  ScDrfReport Rev = checkScDrf(fig8Program(), ModelSpec::revised());
  T.check("SC-DRF restored by the revised model", true, Rev.holds());
  T.check("all valid executions SC [revised]", true,
          Rev.AllValidExecutionsSC);

  // The observable outcome.
  EnumerationResult OrigOut =
      enumerateOutcomes(fig8Program(), ModelSpec::original());
  EnumerationResult RevOut =
      enumerateOutcomes(fig8Program(), ModelSpec::revised());
  T.check("outcome r=2 after reading 1 allowed [original]", true,
          OrigOut.allows(fig8Outcome()));
  T.check("outcome r=2 after reading 1 forbidden [revised]", false,
          RevOut.allows(fig8Outcome()));

  // The ARM fix alone must NOT restore SC-DRF (the fixes are independent).
  ScDrfReport ArmOnly = checkScDrf(fig8Program(), ModelSpec::armFixOnly());
  T.check("arm-fix-only model still violates SC-DRF", false,
          ArmOnly.holds());

  return T.finish();
}
