//===- bench_sec63_unisize_reduction.cpp - Experiment E12 (Fig. 12) -------===//
///
/// \file
/// Regenerates the uni-size reduction result of §6.3: on executions with no
/// partial overlaps and no tearing (rf⁻¹ functional), validity in the
/// mixed-size revised model coincides with validity in the uni-size model
/// of Fig. 12 — checked exhaustively over the executions of a program
/// family and over every tot of selected executions.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "engine/ExecutionEngine.h"
#include "exec/Enumerator.h"
#include "paper/Figures.h"
#include "support/LinearExtensions.h"
#include "unisize/Reduction.h"

using namespace jsmm;
using namespace jsmm::bench;
using namespace jsmm::paper;

int main() {
  Table T("E12: mixed-size to uni-size reduction",
          "Watt et al. PLDI 2020, Fig. 12, sections 6.3-6.4");

  std::vector<Program> Family;
  Family.push_back(fig1Program());
  Family.push_back(fig8Program());
  {
    Program P(8);
    P.Name = "sb";
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0).sc(), 1);
    T0.load(Acc::u32(4).sc());
    ThreadBuilder T1 = P.thread();
    T1.store(Acc::u32(4), 1);
    T1.load(Acc::u32(0));
    Family.push_back(P);
  }
  {
    Program P(4);
    P.Name = "rmw";
    ThreadBuilder T0 = P.thread();
    T0.exchange(Acc::u32(0), 1);
    ThreadBuilder T1 = P.thread();
    T1.exchange(Acc::u32(0), 2);
    Family.push_back(P);
  }

  uint64_t Checked = 0, Skipped = 0, Mismatches = 0;
  ExecutionEngine Engine;
  double Ms = timedMs([&] {
    for (const Program &P : Family) {
      ReductionScan Scan =
          scanReductionEquivalence(Engine, P, ModelSpec::revised());
      Checked += Scan.Reducible;
      Skipped += Scan.Skipped;
      Mismatches += Scan.Mismatches;
    }
  });
  T.row("validity mismatches on reducible executions", "0",
        std::to_string(Mismatches), Mismatches == 0);
  T.note("reducible executions checked: " + std::to_string(Checked) +
         ", non-reducible skipped: " + std::to_string(Skipped) + ", time " +
         std::to_string(Ms) + " ms");

  // Per-tot form of the equivalence on Fig. 2.
  {
    CandidateExecution CE = fig2Execution();
    DerivedRelations D =
        DerivedRelations::compute(CE, SwDefKind::Simplified);
    uint64_t Tots = 0, TotMismatches = 0;
    forEachLinearExtension(
        D.Hb, CE.allEventsMask(), [&](const std::vector<unsigned> &Seq) {
          CandidateExecution WithTot = CE;
          WithTot.Tot = totalOrderFromSequence(Seq, CE.numEvents());
          ReductionResult RR = reduceToUniSize(WithTot);
          ++Tots;
          if (isValid(WithTot, ModelSpec::revised()) != isUniValid(RR.Uni))
            ++TotMismatches;
          return true;
        });
    T.row("per-tot mismatches on Fig. 2", "0",
          std::to_string(TotMismatches), TotMismatches == 0);
    T.note("tot witnesses enumerated: " + std::to_string(Tots));
  }

  // §6.4: the preconditions are necessary — Fig. 14's Init-tearing
  // execution is not reducible, and the strengthened Tear-Free Reads rule
  // restores rf⁻¹ functionality by forbidding it.
  T.check("Fig. 14 execution is not uni-size reducible", false,
          isUniSizeReducible(fig14Execution()));
  T.check("strong Tear-Free Reads forbids it", false,
          isValidForSomeTot(fig14Execution(),
                            ModelSpec::revisedStrongTearFree()));

  return T.finish();
}
