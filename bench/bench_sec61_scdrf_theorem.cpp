//===- bench_sec61_scdrf_theorem.cpp - Experiment E10 (Thm 6.1) -----------===//
///
/// \file
/// Bounded model-checking of Theorem 6.1 (internal_sc_drf): in the revised
/// model, every well-formed, valid, data-race-free execution is
/// sequentially consistent. The sweep covers (a) every skeleton execution
/// within the §5 search bound and (b) the SC-DRF property at program level
/// for a family of litmus programs, including the paper's own figures.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/DataRace.h"
#include "core/SeqConsistency.h"
#include "exec/Enumerator.h"
#include "paper/Figures.h"
#include "search/SkeletonSearch.h"

using namespace jsmm;
using namespace jsmm::bench;
using namespace jsmm::paper;

int main() {
  Table T("E10: model-internal SC-DRF of the revised model (Thm 6.1)",
          "Watt et al. PLDI 2020, section 6.1");

  // (a) Execution-level sweep: valid + race-free => SC.
  {
    SearchConfig Cfg;
    Cfg.MinEvents = 2;
    Cfg.MaxEvents = 4;
    Cfg.NumLocs = 2;
    uint64_t Checked = 0, Violations = 0;
    double Ms = timedMs([&] {
      forEachSkeletonCandidate(
          Cfg,
          [&](const CandidateExecution &Js, const ArmExecution &Arm) {
            (void)Arm;
            if (!isValidForSomeTot(Js, ModelSpec::revised()))
              return true;
            if (!isRaceFree(Js, ModelSpec::revised()))
              return true;
            ++Checked;
            if (!isSequentiallyConsistent(Js))
              ++Violations;
            return true;
          },
          nullptr);
    });
    T.row("valid DRF executions that are not SC (revised)", "0",
          std::to_string(Violations), Violations == 0);
    T.note("valid race-free executions checked: " + std::to_string(Checked) +
           ", time " + std::to_string(Ms) + " ms");

    // Control: the same sweep under the original model must find the
    // violations the theorem excludes.
    uint64_t OrigViolations = 0;
    forEachSkeletonCandidate(
        Cfg,
        [&](const CandidateExecution &Js, const ArmExecution &Arm) {
          (void)Arm;
          if (isValidForSomeTot(Js, ModelSpec::original()) &&
              isRaceFree(Js, ModelSpec::original()) &&
              !isSequentiallyConsistent(Js))
            ++OrigViolations;
          return OrigViolations < 100;
        },
        nullptr);
    T.check("the original model does violate it in the same bound", true,
            OrigViolations > 0);
    T.note("original-model violations found (capped at 100): " +
           std::to_string(OrigViolations));
  }

  // (b) Program-level SC-DRF reports.
  struct Named {
    const char *Name;
    Program P;
  };
  std::vector<Named> Programs;
  Programs.push_back({"fig1 message passing", fig1Program()});
  Programs.push_back({"fig6 program", fig6Program()});
  Programs.push_back({"fig8 program", fig8Program()});
  {
    Program P(8);
    P.Name = "sb-sc";
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0).sc(), 1);
    T0.load(Acc::u32(4).sc());
    ThreadBuilder T1 = P.thread();
    T1.store(Acc::u32(4).sc(), 1);
    T1.load(Acc::u32(0).sc());
    Programs.push_back({"store buffering (all SC)", P});
  }
  {
    Program P(4);
    P.Name = "xchg-race";
    ThreadBuilder T0 = P.thread();
    T0.exchange(Acc::u32(0), 1);
    ThreadBuilder T1 = P.thread();
    T1.exchange(Acc::u32(0), 2);
    Programs.push_back({"competing exchanges", P});
  }
  for (const Named &N : Programs) {
    ScDrfReport R = checkScDrf(N.P, ModelSpec::revised());
    T.check(std::string("SC-DRF holds for ") + N.Name + " [revised]", true,
            R.holds());
  }
  ScDrfReport Fig8Orig = checkScDrf(fig8Program(), ModelSpec::original());
  T.check("fig8 violates SC-DRF under the original model", false,
          Fig8Orig.holds());

  return T.finish();
}
