//===- bench_sec62_compilation_theorem.cpp - Experiment E11 (Thm 6.2) -----===//
///
/// \file
/// Bounded model-checking of Theorem 6.2 (jsmm_compilation): the §5.1
/// compilation scheme from the revised JavaScript model to mixed-size
/// ARMv8 is correct. For a family of aligned (typed-array) programs —
/// including mixed-size and RMW programs — every ARM-consistent execution
/// of the compiled program is JS-valid, witnessed by the proof's tot
/// construction.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "compile/TotConstruction.h"
#include "paper/Figures.h"

using namespace jsmm;
using namespace jsmm::bench;
using namespace jsmm::paper;

namespace {

std::vector<Program> programFamily() {
  std::vector<Program> Out;
  Out.push_back(fig1Program());
  Out.push_back(fig6Program());
  Out.push_back(fig8Program());
  {
    Program P(8);
    P.Name = "sb-all-sc";
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0).sc(), 1);
    T0.load(Acc::u32(4).sc());
    ThreadBuilder T1 = P.thread();
    T1.store(Acc::u32(4).sc(), 1);
    T1.load(Acc::u32(0).sc());
    Out.push_back(P);
  }
  {
    Program P(8);
    P.Name = "lb-mixed-modes";
    ThreadBuilder T0 = P.thread();
    T0.load(Acc::u32(0));
    T0.store(Acc::u32(4).sc(), 1);
    ThreadBuilder T1 = P.thread();
    T1.load(Acc::u32(4).sc());
    T1.store(Acc::u32(0), 1);
    Out.push_back(P);
  }
  {
    Program P(8);
    P.Name = "mixed-size-halves";
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0), 0x01020304);
    T0.store(Acc::u32(4).sc(), 1);
    ThreadBuilder T1 = P.thread();
    T1.load(Acc::u32(4).sc());
    T1.load(Acc::u16(0));
    T1.load(Acc::u16(2));
    Out.push_back(P);
  }
  {
    Program P(4);
    P.Name = "exchange-pair";
    ThreadBuilder T0 = P.thread();
    T0.exchange(Acc::u32(0), 1);
    ThreadBuilder T1 = P.thread();
    T1.exchange(Acc::u32(0), 2);
    T1.load(Acc::u32(0));
    Out.push_back(P);
  }
  {
    Program P(2);
    P.Name = "byte-racing";
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u8(0).sc(), 1);
    T0.load(Acc::u8(1));
    ThreadBuilder T1 = P.thread();
    T1.store(Acc::u8(1).sc(), 1);
    T1.load(Acc::u8(0));
    Out.push_back(P);
  }
  return Out;
}

} // namespace

int main() {
  Table T("E11: compilation correctness JS(revised) -> mixed-size ARMv8",
          "Watt et al. PLDI 2020, Thm 6.2, section 6.2");

  uint64_t TotalConsistent = 0;
  double Ms = timedMs([&] {
    for (const Program &P : programFamily()) {
      CompileCheckResult R =
          checkCompilationForProgram(P, ModelSpec::revised());
      TotalConsistent += R.ArmConsistent;
      T.check("holds for " + P.Name + " (" +
                  std::to_string(R.ArmConsistent) + " ARM executions)",
              true, R.holds());
      T.check("  ... witnessed by the tot construction", true,
              R.constructionAlwaysWorks());
    }
  });
  T.note("ARM-consistent executions checked in total: " +
         std::to_string(TotalConsistent) + ", time " + std::to_string(Ms) +
         " ms");

  // The same theorem is false for the original model (§3.1), pinned on the
  // Fig. 6 program.
  CompileCheckResult Bad =
      checkCompilationForProgram(fig6Program(), ModelSpec::original());
  T.check("fails for the original model on fig6 (as §3.1 requires)", false,
          Bad.holds());

  return T.finish();
}
