//===- bench_fig1_message_passing.cpp - Experiment E1 (Fig. 1/2) ----------===//
///
/// \file
/// Regenerates the Fig. 1 message-passing table of §2: the outcomes allowed
/// by the JavaScript model for the atomic-flag program, and the relaxation
/// observed when either atomic is downgraded to a non-atomic access.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "exec/Enumerator.h"
#include "paper/Figures.h"

using namespace jsmm;
using namespace jsmm::bench;
using namespace jsmm::paper;

int main() {
  Table T("E1: message passing through a SharedArrayBuffer",
          "Watt et al. PLDI 2020, Fig. 1/Fig. 2, section 2");

  Outcome Complete = outcome({{1, 0, 5}, {1, 1, 3}});
  Outcome FlagUnset = outcome({{1, 0, 0}});
  Outcome Stale = outcome({{1, 0, 5}, {1, 1, 0}});

  for (ModelSpec Spec : {ModelSpec::original(), ModelSpec::revised()}) {
    EnumerationResult R = enumerateOutcomes(fig1Program(), Spec);
    std::string Tag = std::string(" [") + Spec.Name + "]";
    T.check("r0=5 and r1=3 allowed" + Tag, true, R.allows(Complete));
    T.check("r0=0 allowed" + Tag, true, R.allows(FlagUnset));
    T.check("r0=5 and r1=0 (stale message) forbidden" + Tag, false,
            R.allows(Stale));
    T.check("exactly two outcomes" + Tag, true, R.Allowed.size() == 2);
    T.note("candidates considered: " +
           std::to_string(R.CandidatesConsidered));
  }

  // The §2 relaxation: a non-atomic flag write re-admits the stale
  // outcome.
  {
    Program P(1024);
    P.Name = "fig1-nonatomic-flag";
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0), 3);
    T0.store(Acc::u32(4), 5);
    ThreadBuilder T1 = P.thread();
    Reg R0 = T1.load(Acc::u32(4).sc());
    T1.ifEq(R0, 5, [&](ThreadBuilder &B) { B.load(Acc::u32(0)); });
    EnumerationResult R = enumerateOutcomes(P, ModelSpec::revised());
    T.check("non-atomic flag write re-admits the stale outcome", true,
            R.allows(Stale));
  }
  {
    Program P(1024);
    P.Name = "fig1-nonatomic-read";
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0), 3);
    T0.store(Acc::u32(4).sc(), 5);
    ThreadBuilder T1 = P.thread();
    Reg R0 = T1.load(Acc::u32(4)); // plain flag read
    T1.ifEq(R0, 5, [&](ThreadBuilder &B) { B.load(Acc::u32(0)); });
    EnumerationResult R = enumerateOutcomes(P, ModelSpec::revised());
    T.check("non-atomic flag read re-admits the stale outcome", true,
            R.allows(Stale));
  }

  return T.finish();
}
