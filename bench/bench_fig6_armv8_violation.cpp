//===- bench_fig6_armv8_violation.cpp - Experiments E2/E5 (Fig. 5/6) ------===//
///
/// \file
/// Regenerates the §3.1 discovery end-to-end:
///   1. the Fig. 6a candidate execution is invalid in the original
///      JavaScript model for *every* total order, while the revised model
///      accepts it;
///   2. no alternative candidate of the Fig. 6 program justifies the
///      outcome under the original model (program-level verdict);
///   3. the compiled program's Fig. 6b execution is allowed by the
///      mixed-size ARMv8 model (the hardware-proxy verdict of §3.3);
///   4. the compilation check fails for the original model and passes,
///      with the §5.3 tot construction, for the revised one.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "armv8/ArmEnumerator.h"
#include "compile/TotConstruction.h"
#include "exec/Enumerator.h"
#include "paper/Figures.h"

using namespace jsmm;
using namespace jsmm::bench;
using namespace jsmm::paper;

int main() {
  Table T("E2/E5: the ARMv8 compilation scheme violation",
          "Watt et al. PLDI 2020, Fig. 5, Fig. 6, sections 3.1 and 3.3");

  // (1) Candidate-execution level.
  T.check("Fig. 6a invalid for all tot [original]", true,
          isInvalidForAllTot(fig6aExecution(), ModelSpec::original()));
  T.check("Fig. 6a valid for some tot [revised]", true,
          isValidForSomeTot(fig6aExecution(), ModelSpec::revised()));
  T.check("Fig. 6a valid for some tot [arm-fix-only]", true,
          isValidForSomeTot(fig6aExecution(), ModelSpec::armFixOnly()));

  // (2) Program level: no candidate justifies the outcome originally.
  EnumerationResult Orig =
      enumerateOutcomes(fig6Program(), ModelSpec::original());
  EnumerationResult Rev =
      enumerateOutcomes(fig6Program(), ModelSpec::revised());
  T.check("program outcome r1=1,r2=1 forbidden [original]", false,
          Orig.allows(fig6Outcome()));
  T.check("program outcome r1=1,r2=1 allowed [revised]", true,
          Rev.allows(fig6Outcome()));
  T.note("original model: " + std::to_string(Orig.Allowed.size()) +
         " outcomes from " + std::to_string(Orig.CandidatesConsidered) +
         " candidates; revised: " + std::to_string(Rev.Allowed.size()));

  // (3) ARM side: the compiled program exhibits the outcome (§3.3's
  // hardware observation, reproduced on the model).
  CompiledProgram CP = compileToArm(fig6Program());
  ArmEnumerationResult Arm = enumerateArmOutcomes(CP.Arm);
  Outcome ArmOutcome = fig6Outcome();
  T.check("compiled (ldar/stlr) program allows the outcome on ARMv8", true,
          Arm.allows(ArmOutcome));

  // (4) Whole-scheme verdicts.
  CompileCheckResult Bad =
      checkCompilationForProgram(fig6Program(), ModelSpec::original());
  T.check("compilation scheme broken under the original model", false,
          Bad.holds());
  T.note("ARM-consistent executions: " + std::to_string(Bad.ArmConsistent) +
         ", JS-justifiable: " + std::to_string(Bad.ExistentiallyValid));
  CompileCheckResult Good =
      checkCompilationForProgram(fig6Program(), ModelSpec::revised());
  T.check("compilation scheme holds under the revised model", true,
          Good.holds());
  T.check("the sec. 5.3 tot construction witnesses every execution", true,
          Good.constructionAlwaysWorks());

  return T.finish();
}
