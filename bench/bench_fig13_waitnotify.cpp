//===- bench_fig13_waitnotify.cpp - Experiment E15 (Fig. 13, §7) ----------===//
///
/// \file
/// Regenerates the Atomics.wait/notify correction: without synchronization
/// edges, the axiomatic model admits the two intuitively impossible
/// executions of Fig. 13 — a woken thread re-reading the pre-notify value
/// (13b) and a wait suspending after an unobserved notify (13c). Adding
/// the wake and critical-section additional-synchronizes-with edges
/// forbids both and restores the termination guarantee.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "waitnotify/WaitNotify.h"

using namespace jsmm;
using namespace jsmm::bench;

int main() {
  Table T("E15: Atomics.wait / Atomics.notify synchronization",
          "Watt et al. PLDI 2020, Fig. 13, section 7");

  WnProgram P;
  P.BufferSize = 4;
  P.Name = "fig13a";
  unsigned T0 = P.thread();
  P.wait(T0, 0, 0);
  P.load(T0, 0, Mode::SeqCst);
  unsigned T1 = P.thread();
  P.store(T1, 0, 42, Mode::SeqCst);
  P.notify(T1, 0);

  WnResult Broken = enumerateWaitNotify(P, ModelSpec::revised(),
                                        /*CriticalSectionAsw=*/false);
  WnResult Fixed = enumerateWaitNotify(P, ModelSpec::revised(),
                                       /*CriticalSectionAsw=*/true);

  T.check("Fig. 13b (woken thread reads 0) allowed without the fix", true,
          Broken.allows("0:r0=0 1:r0=1"));
  T.check("Fig. 13c (suspend after missed notify) allowed without the fix",
          true, Broken.allows("1:r0=0 T0:stuck"));
  T.check("Fig. 13b forbidden with the fix", false,
          Fixed.allows("0:r0=0 1:r0=1"));
  T.check("Fig. 13c forbidden with the fix", false,
          Fixed.allows("1:r0=0 T0:stuck"));
  T.check("with the fix the program always terminates", false,
          Fixed.allowsStuckThread());

  bool AlwaysReads42 = true;
  for (const std::string &O : Fixed.AllowedOutcomes)
    if (O.find("0:r0=42") == std::string::npos)
      AlwaysReads42 = false;
  T.check("with the fix the final load always reads 42", true,
          AlwaysReads42);

  std::cout << "\n  outcomes without the fix:\n";
  for (const std::string &O : Broken.AllowedOutcomes)
    std::cout << "    " << O << "\n";
  std::cout << "  outcomes with the fix:\n";
  for (const std::string &O : Fixed.AllowedOutcomes)
    std::cout << "    " << O << "\n";

  T.note("schedules: " + std::to_string(Fixed.Schedules) +
         ", candidates: " + std::to_string(Fixed.Candidates));

  return T.finish();
}
