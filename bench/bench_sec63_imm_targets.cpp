//===- bench_sec63_imm_targets.cpp - Experiment E13 (Thm 6.3) -------------===//
///
/// \file
/// Bounded model-checking of Theorem 6.3
/// (s_imm_consistent_implies_jsmm_consistent): uni-size JavaScript compiles
/// correctly to x86-TSO, Power, RISC-V, ARMv7 and ARMv8, via the ImmLite
/// intermediate model and directly. For every program in the sweep family
/// and every target, each target-consistent execution of the compiled
/// program must be valid uni-size JavaScript.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "targets/TargetCompile.h"

using namespace jsmm;
using namespace jsmm::bench;

namespace {

std::vector<UniProgram> sweepFamily() {
  std::vector<UniProgram> Out;
  auto SB = [](Mode M) {
    UniProgram P(2);
    unsigned T0 = P.thread();
    P.store(T0, 0, 1, M);
    P.load(T0, 1, M);
    unsigned T1 = P.thread();
    P.store(T1, 1, 1, M);
    P.load(T1, 0, M);
    P.Name = std::string("SB.") + (M == Mode::SeqCst ? "sc" : "un");
    return P;
  };
  auto MP = [](Mode M) {
    UniProgram P(2);
    unsigned T0 = P.thread();
    P.store(T0, 0, 1, Mode::Unordered);
    P.store(T0, 1, 1, M);
    unsigned T1 = P.thread();
    P.load(T1, 1, M);
    P.load(T1, 0, Mode::Unordered);
    P.Name = std::string("MP.") + (M == Mode::SeqCst ? "sc" : "un");
    return P;
  };
  auto LB = [](Mode M) {
    UniProgram P(2);
    unsigned T0 = P.thread();
    P.load(T0, 0, M);
    P.store(T0, 1, 1, M);
    unsigned T1 = P.thread();
    P.load(T1, 1, M);
    P.store(T1, 0, 1, M);
    P.Name = std::string("LB.") + (M == Mode::SeqCst ? "sc" : "un");
    return P;
  };
  Out.push_back(SB(Mode::SeqCst));
  Out.push_back(SB(Mode::Unordered));
  Out.push_back(MP(Mode::SeqCst));
  Out.push_back(MP(Mode::Unordered));
  Out.push_back(LB(Mode::SeqCst));
  Out.push_back(LB(Mode::Unordered));
  {
    UniProgram P(1);
    unsigned T0 = P.thread();
    P.exchange(T0, 0, 1);
    unsigned T1 = P.thread();
    P.exchange(T1, 0, 2);
    P.load(T1, 0, Mode::Unordered);
    P.Name = "XCHG";
    Out.push_back(P);
  }
  {
    UniProgram P(2);
    unsigned T0 = P.thread();
    P.store(T0, 0, 1, Mode::SeqCst);
    P.load(T0, 1, Mode::Unordered);
    unsigned T1 = P.thread();
    P.store(T1, 1, 2, Mode::Unordered);
    P.load(T1, 0, Mode::SeqCst);
    P.Name = "MIXED-MODES";
    Out.push_back(P);
  }
  return Out;
}

} // namespace

int main() {
  Table T("E13: uni-size compilation to the Thm 6.3 targets",
          "Watt et al. PLDI 2020, Thm 6.3, section 6.3");

  const TargetArch Targets[] = {TargetArch::ImmLite, TargetArch::X86,
                                TargetArch::ArmV8,   TargetArch::ArmV7,
                                TargetArch::Power,   TargetArch::RiscV};
  uint64_t Total = 0;
  double Ms = timedMs([&] {
    for (TargetArch A : Targets) {
      uint64_t Consistent = 0, Valid = 0;
      bool Holds = true;
      for (const UniProgram &P : sweepFamily()) {
        TargetCheckResult R = checkUniCompilation(P, A);
        Consistent += R.Consistent;
        Valid += R.JsValid;
        Holds = Holds && R.holds();
      }
      Total += Consistent;
      T.row(std::string("JS-uni -> ") + targetArchName(A), "correct",
            std::to_string(Valid) + "/" + std::to_string(Consistent) +
                " executions justified",
            Holds);
    }
  });
  T.note("total target-consistent executions: " + std::to_string(Total) +
         ", time " + std::to_string(Ms) + " ms");

  // The "no stronger than IMM" companion claims: JS Un at least as weak as
  // relaxed, JS SC at least as weak as SC — witnessed by ImmLite-allowed
  // behaviours surviving translation.
  {
    UniProgram P(2);
    unsigned T0 = P.thread();
    P.store(T0, 0, 1, Mode::Unordered);
    P.load(T0, 1, Mode::Unordered);
    unsigned T1 = P.thread();
    P.store(T1, 1, 1, Mode::Unordered);
    P.load(T1, 0, Mode::Unordered);
    CompiledTarget CT = compileUni(P, TargetArch::ImmLite);
    bool WeakAllowed = false;
    forEachTargetExecution(
        CT, [&](const TargetExecution &X, const Outcome &O) {
          uint64_t A = 1, B = 1;
          O.lookup(0, 0, A);
          O.lookup(1, 0, B);
          if (A == 0 && B == 0 && isImmLiteConsistent(X) &&
              isUniValidForSomeTot(translateTargetToUni(X, CT))) {
            WeakAllowed = true;
            return false;
          }
          return true;
        });
    T.check("JS Un no stronger than ImmLite relaxed (SB weak outcome)",
            true, WeakAllowed);
  }

  return T.finish();
}
