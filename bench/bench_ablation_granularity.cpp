//===- bench_ablation_granularity.cpp - Coherence-granularity ablation ----===//
///
/// \file
/// Ablation for the mixed-size design decision DESIGN.md calls out: where
/// Flat's mixed-size semantics is unsettled, the paper's axiomatic ARMv8
/// model "chooses weaker behaviours". Our rendition makes coherence a
/// per-*granule* order, so partially overlapping writes could in principle
/// be ordered differently on different granules — one global write order
/// per block (what the flat-memory operational model produces) is the
/// obvious stronger alternative.
///
/// The ablation's finding: the weakness is *almost vacuous*. For any two
/// writes, divergent granule orders put both coherence directions into
/// obs, which the external axiom rejects immediately — demonstrated on a
/// hand-built execution below. Divergence can therefore only survive
/// through same-thread (coi) links in chains of three or more overlapping
/// writes, and no test in the small-cycle corpus produces one. This is
/// the quantitative footnote to §4's "as long as our model is no stronger
/// than Flat" argument: the weak choice never threatens the E6 soundness
/// validation, and barely enlarges the model at litmus scale.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "armv8/ArmEnumerator.h"
#include "flatsim/FlatSim.h"
#include "gen/Diy.h"

#include <set>

using namespace jsmm;
using namespace jsmm::bench;

namespace {

/// \returns true if the execution's granule orders embed into one global
/// order of the block's writes (their union is acyclic).
bool globallyOrderable(const ArmExecution &X) {
  Relation Union(X.numEvents());
  for (const CoGranule &G : X.Co)
    for (size_t I = 0; I < G.Order.size(); ++I)
      for (size_t J = I + 1; J < G.Order.size(); ++J)
        Union.set(G.Order[I], G.Order[J]);
  return Union.isAcyclic();
}

/// Two 4-byte writes from different threads, split into two granules by a
/// third 2-byte write, with the 4-byte writes ordered differently on the
/// two granules. The external axiom must reject it (coe both ways).
ArmExecution divergentPairExecution() {
  std::vector<ArmEvent> Evs;
  Evs.push_back(makeArmInit(0, 4));
  Evs.push_back(makeArmWrite(1, 0, 0, 4, 0x01010101));
  Evs.push_back(makeArmWrite(2, 1, 0, 4, 0x02020202));
  Evs.push_back(makeArmWrite(3, 2, 0, 2, 0x0303));
  ArmExecution X(std::move(Evs));
  X.Co = X.computeGranules(); // [0,2): {1,2,3}; [2,4): {1,2}
  for (CoGranule &G : X.Co) {
    if (G.Begin == 0) {
      G.Order.push_back(1);
      G.Order.push_back(3);
      G.Order.push_back(2); // W1 before W2 here...
    } else {
      G.Order.push_back(2);
      G.Order.push_back(1); // ...and W2 before W1 there.
    }
  }
  return X;
}

} // namespace

int main() {
  Table T("Ablation: per-granule coherence vs one global write order",
          "design decision of section 4 (mixed-size ARMv8 model)");

  // (1) The structural fact: pairwise divergence is self-defeating.
  ArmExecution Divergent = divergentPairExecution();
  std::string Why;
  T.check("divergent order for one write pair is inconsistent", false,
          isArmConsistent(Divergent, &Why));
  T.note("rejection reason: " + Why);
  T.check("...and it is exactly the non-globally-orderable shape", false,
          globallyOrderable(Divergent));

  // (2) The measurement: across the mixed-size corpus, does any
  // *consistent* execution or observable outcome need the weak choice?
  DiyConfig Cfg;
  Cfg.MinEdges = 2;
  Cfg.MaxEdges = 3;
  Cfg.IncludeWide = true;
  Cfg.IncludeOverlap = true;
  Cfg.Alphabet = {EdgeKind::Rfe,   EdgeKind::Fre,   EdgeKind::Coe,
                  EdgeKind::PodRW, EdgeKind::PodWR, EdgeKind::PodWW,
                  EdgeKind::PodRR};
  std::vector<DiyTest> Corpus = generateCorpus(Cfg);

  uint64_t WeakOnlyExecutions = 0, TotalConsistent = 0;
  uint64_t OperationalNonGlobal = 0;
  double Ms = timedMs([&] {
    for (const DiyTest &Test : Corpus) {
      forEachArmExecution(Test.Prog,
                          [&](const ArmExecution &X, const Outcome &O) {
                            (void)O;
                            if (!isArmConsistent(X))
                              return true;
                            ++TotalConsistent;
                            if (!globallyOrderable(X))
                              ++WeakOnlyExecutions;
                            return true;
                          });
      forEachFlatExecution(Test.Prog,
                           [&](const ArmExecution &X, const Outcome &O) {
                             (void)O;
                             if (!globallyOrderable(X))
                               ++OperationalNonGlobal;
                             return true;
                           });
    }
  });

  T.row("consistent executions needing per-granule weakness",
        "0 at litmus scale",
        std::to_string(WeakOnlyExecutions) + "/" +
            std::to_string(TotalConsistent),
        WeakOnlyExecutions == 0);
  T.row("operational executions that are non-global", "0 (flat memory)",
        std::to_string(OperationalNonGlobal), OperationalNonGlobal == 0);
  T.note("=> replacing per-granule coherence by one global write order "
         "changes nothing on this corpus; the weak choice is future-"
         "proofing for >=3-write overlap chains, not observable here");
  T.note("corpus: " + std::to_string(Corpus.size()) + " tests, " +
         std::to_string(TotalConsistent) + " consistent executions, time " +
         std::to_string(Ms) + " ms");

  return T.finish();
}
