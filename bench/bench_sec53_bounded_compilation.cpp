//===- bench_sec53_bounded_compilation.cpp - Experiment E8 (§5.3) ---------===//
///
/// \file
/// Regenerates the bounded compilation-correctness verification of the
/// revised model: within the search bound, every ARM-consistent skeleton
/// execution is witnessed as JS-valid by the proof's tot construction
/// (a linear extension of sb ∪ (obs ∩ (L∪A)²)) — without any deadness
/// approximation. The paper's Alloy bound was 8 events / 20 locations; the
/// explicit enumerator sweeps 5 events / 2 locations exhaustively plus a
/// 6-event budgeted pass, which already contains the entire counter-example
/// territory of §5.2.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "search/SkeletonSearch.h"

using namespace jsmm;
using namespace jsmm::bench;

int main(int Argc, char **Argv) {
  unsigned MaxEvents = Argc > 1 ? std::atoi(Argv[1]) : 5;

  Table T("E8: bounded compilation correctness of the revised model",
          "Watt et al. PLDI 2020, section 5.3");

  SearchConfig Cfg;
  Cfg.MinEvents = 2;
  Cfg.MaxEvents = MaxEvents;
  Cfg.NumLocs = 2;
  Cfg.Js = ModelSpec::revised();
  Cfg.Threads = 0; // shard the shape outer loop across all cores
  BoundedCompilationReport R;
  double Ms = timedMs([&] { R = boundedCompilationCheck(Cfg); });

  T.row("counter-examples within the bound", "0",
        std::to_string(R.ConstructionFailures), R.holds());
  T.check("every ARM-consistent execution witnessed by the construction",
          true, R.holds());
  T.note("skeletons: " + std::to_string(R.Skeletons) +
         ", rbf candidates: " + std::to_string(R.RbfCandidates) +
         ", ARM-consistent executions: " +
         std::to_string(R.ArmConsistentExecutions));
  T.note("bound: up to " + std::to_string(MaxEvents) +
         " events / 2 byte locations, time " + std::to_string(Ms) + " ms");

  // Contrast: the same check against the original model must fail at the
  // 6-event mark (where the §5.2 counter-example lives).
  SearchConfig Bad;
  Bad.MinEvents = 6;
  Bad.MaxEvents = 6;
  Bad.NumLocs = 2;
  Bad.Js = ModelSpec::original();
  Bad.MaxCandidates = 2000000;
  BoundedCompilationReport BadR = boundedCompilationCheck(Bad);
  T.check("the original model fails the same check at 6 events", false,
          BadR.holds());
  T.note("original-model construction failures observed: " +
         std::to_string(BadR.ConstructionFailures));

  return T.finish();
}
