//===- bench_sec52_search_armv8.cpp - Experiments E7/E17 (§5.1-5.2) -------===//
///
/// \file
/// Regenerates the Alloy counter-example search for the ARMv8 compilation
/// deficiency:
///
///   1. the minimal counter-example found automatically has 6 events and
///      2 byte locations (the hand-found one needed 8 and 3);
///   2. exhaustively, no counter-example exists below 6 events;
///   3. the deadness ablation (Fig. 11): the naive search accepts a
///      spurious 3-event "counter-example" that both deadness criteria
///      reject, and syntactic deadness never disagrees with the exact
///      semantic criterion on a sampled sweep.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "paper/Figures.h"
#include "search/SkeletonSearch.h"

using namespace jsmm;
using namespace jsmm::bench;
using namespace jsmm::paper;

int main() {
  Table T("E7/E17: counter-example search, ARMv8 compilation",
          "Watt et al. PLDI 2020, sections 5.1-5.2, Fig. 11");

  // (1) The paper's row: minimal counter-example modulo Init
  // synchronization — the class the Alloy search's syntactic deadness can
  // certify.
  SearchConfig Cfg;
  Cfg.MinEvents = 2;
  Cfg.MaxEvents = 6;
  Cfg.NumLocs = 2;
  Cfg.Js = ModelSpec::original();
  Cfg.Deadness = SearchConfig::DeadnessMode::Semantic;
  Cfg.ExcludeInitSynchronization = true;
  Cfg.Threads = 0; // shard the shape outer loop across all cores
  SearchStats Stats;
  std::optional<SkeletonCex> Cex;
  double Ms = timedMs([&] { Cex = searchArmCompilationCex(Cfg, &Stats); });
  T.check("counter-example found for the original model", true,
          Cex.has_value());
  if (Cex) {
    T.row("minimal size (events)", "6", std::to_string(Cex->NumEvents),
          Cex->NumEvents == 6);
    T.row("minimal size (byte locations)", "2",
          std::to_string(Cex->NumLocs), Cex->NumLocs == 2);
    T.check("JS side dead-invalid [original]", true,
            isSemanticallyDead(Cex->Js, ModelSpec::original()));
    T.check("ARM side consistent", true, isArmConsistent(Cex->Arm));
    T.check("not a counter-example for the revised model", false,
            isSemanticallyDead(Cex->Js, ModelSpec::revised()));
    std::cout << "\n  found JS execution (dead-invalid in the original "
                 "model):\n"
              << Cex->Js.toString();
  }
  T.note("skeletons: " + std::to_string(Stats.Skeletons) +
         ", rbf candidates: " + std::to_string(Stats.RbfCandidates) +
         ", time: " + std::to_string(Ms) + " ms");

  // (2) Exhaustive absence below 6 events (the minimality claim).
  SearchConfig Below = Cfg;
  Below.MaxEvents = 5;
  SearchStats BelowStats;
  auto None = searchArmCompilationCex(Below, &BelowStats);
  T.check("no counter-example below 6 events (exhaustive, modulo Init-sw)",
          false, None.has_value());
  T.note("skeletons swept: " + std::to_string(BelowStats.Skeletons));

  // (2b) Reproduction finding: with the exact semantic criterion — which
  // the paper calls computationally infeasible in Alloy — an even smaller,
  // 4-event counter-example exists, through the Init synchronizes-with
  // special case. It is legitimate (program-level confirmation in
  // tests/search_test.cpp).
  SearchConfig Exact = Cfg;
  Exact.MaxEvents = 5;
  Exact.ExcludeInitSynchronization = false;
  auto Smaller = searchArmCompilationCex(Exact);
  T.check("exact deadness finds a 4-event Init-based counter-example",
          true, Smaller.has_value() && Smaller->NumEvents == 4);
  if (Smaller)
    std::cout << "\n  4-event counter-example (new; beyond the paper's "
                 "syntactic-deadness search):\n"
              << Smaller->Js.toString();

  // (3) Fig. 11's deadness ablation on the naive search.
  {
    std::vector<Event> Evs;
    Evs.push_back(makeInit(0, 4));
    Evs.push_back(makeWrite(1, 0, Mode::SeqCst, 0, 4, 1));
    Evs.push_back(makeWrite(2, 1, Mode::Unordered, 0, 4, 2));
    Evs.push_back(makeRead(3, 1, Mode::SeqCst, 0, 4, 1));
    CandidateExecution Fig11(std::move(Evs));
    Fig11.Sb.set(2, 3);
    for (unsigned K = 0; K < 4; ++K)
      Fig11.Rbf.push_back({K, 1, 3});
    Relation Tot;
    bool Naive = existsInvalidTot(Fig11, ModelSpec::original(), &Tot);
    T.check("Fig. 11 execution accepted by the naive search", true, Naive);
    T.check("rejected by syntactic deadness", false,
            existsSyntacticallyDeadTot(Fig11, ModelSpec::original()));
    T.check("rejected by exact semantic deadness", false,
            isSemanticallyDead(Fig11, ModelSpec::original()));
  }

  // Deadness agreement sweep: syntactic => semantic on small skeletons.
  {
    SearchConfig Sweep;
    Sweep.MinEvents = 2;
    Sweep.MaxEvents = 4;
    Sweep.NumLocs = 2;
    uint64_t Checked = 0, Violations = 0, SyntacticHits = 0;
    forEachSkeletonCandidate(
        Sweep,
        [&](const CandidateExecution &Js, const ArmExecution &Arm) {
          (void)Arm;
          bool Syntactic =
              existsSyntacticallyDeadTot(Js, ModelSpec::original());
          if (Syntactic) {
            ++SyntacticHits;
            if (!isSemanticallyDead(Js, ModelSpec::original()))
              ++Violations;
          }
          return ++Checked < 20000;
        },
        nullptr);
    T.row("syntactic deadness implies semantic deadness", "always",
          std::to_string(SyntacticHits - Violations) + "/" +
              std::to_string(SyntacticHits),
          Violations == 0);
    T.note("candidates sampled: " + std::to_string(Checked));
  }

  return T.finish();
}
