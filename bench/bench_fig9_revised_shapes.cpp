//===- bench_fig9_revised_shapes.cpp - Experiment E4 (Fig. 9/10) ----------===//
///
/// \file
/// Regenerates the shape-level content of the combined fix (Fig. 9/10):
/// the two SC-DRF shapes are forbidden by the revised rule and allowed by
/// the original one; the Fig. 5 shape flips the other way (the ARM-fix
/// weakening); and the Init special case of synchronizes-with is redundant
/// under the final rule (§3.2's simplification).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Validity.h"
#include "paper/Figures.h"

using namespace jsmm;
using namespace jsmm::bench;
using namespace jsmm::paper;

namespace {

/// Fig. 9 first shape (see tests/validity_test.cpp for the derivation).
CandidateExecution fig9First() {
  std::vector<Event> Evs;
  Evs.push_back(makeInit(0, 4));
  Evs.push_back(makeWrite(1, 0, Mode::SeqCst, 0, 4, 1));
  Evs.push_back(makeWrite(2, 1, Mode::SeqCst, 0, 4, 2));
  Evs.push_back(makeRead(3, 0, Mode::Unordered, 0, 4, 1));
  CandidateExecution CE(std::move(Evs));
  CE.Sb.set(1, 3);
  CE.Asw.set(2, 3);
  for (unsigned K = 0; K < 4; ++K)
    CE.Rbf.push_back({K, 1, 3});
  CE.Tot = totalOrderFromSequence({0, 1, 2, 3}, 4);
  return CE;
}

/// Fig. 9 second shape.
CandidateExecution fig9Second() {
  std::vector<Event> Evs;
  Evs.push_back(makeInit(0, 4));
  Evs.push_back(makeWrite(1, 0, Mode::Unordered, 0, 4, 1));
  Evs.push_back(makeWrite(2, 1, Mode::SeqCst, 0, 4, 2));
  Evs.push_back(makeRead(3, 0, Mode::SeqCst, 0, 4, 1));
  CandidateExecution CE(std::move(Evs));
  CE.Sb.set(1, 3);
  CE.Asw.set(1, 2);
  for (unsigned K = 0; K < 4; ++K)
    CE.Rbf.push_back({K, 1, 3});
  CE.Tot = totalOrderFromSequence({0, 1, 2, 3}, 4);
  return CE;
}

/// Fig. 5 shape: W_SC -tot- W_Un -tot- R_SC, sw between the SC pair.
CandidateExecution fig5Shape() {
  std::vector<Event> Evs;
  Evs.push_back(makeInit(0, 4));
  Evs.push_back(makeWrite(1, 0, Mode::SeqCst, 0, 4, 1));
  Evs.push_back(makeWrite(2, 1, Mode::Unordered, 0, 4, 2));
  Evs.push_back(makeRead(3, 2, Mode::SeqCst, 0, 4, 1));
  CandidateExecution CE(std::move(Evs));
  for (unsigned K = 0; K < 4; ++K)
    CE.Rbf.push_back({K, 1, 3});
  CE.Tot = totalOrderFromSequence({0, 1, 2, 3}, 4);
  return CE;
}

/// The Init special case: an SC read of Init with an SC write tot-between.
CandidateExecution initShape() {
  std::vector<Event> Evs;
  Evs.push_back(makeInit(0, 4));
  Evs.push_back(makeWrite(1, 0, Mode::SeqCst, 0, 4, 1));
  Evs.push_back(makeRead(2, 1, Mode::SeqCst, 0, 4, 0));
  CandidateExecution CE(std::move(Evs));
  for (unsigned K = 0; K < 4; ++K)
    CE.Rbf.push_back({K, 0, 2});
  CE.Tot = totalOrderFromSequence({0, 1, 2}, 3);
  return CE;
}

} // namespace

int main() {
  Table T("E4: shapes forbidden/allowed by the combined fix",
          "Watt et al. PLDI 2020, Fig. 5, Fig. 9, Fig. 10");

  T.check("Fig. 5 shape forbidden [original]", false,
          isValid(fig5Shape(), ModelSpec::original()));
  T.check("Fig. 5 shape allowed [arm-fix-only]", true,
          isValid(fig5Shape(), ModelSpec::armFixOnly()));
  T.check("Fig. 5 shape allowed [revised]", true,
          isValid(fig5Shape(), ModelSpec::revised()));

  T.check("Fig. 9 shape 1 allowed [original]", true,
          isValid(fig9First(), ModelSpec::original()));
  T.check("Fig. 9 shape 1 forbidden [revised]", false,
          isValid(fig9First(), ModelSpec::revised()));
  T.check("Fig. 9 shape 2 allowed [original]", true,
          isValid(fig9Second(), ModelSpec::original()));
  T.check("Fig. 9 shape 2 forbidden [revised]", false,
          isValid(fig9Second(), ModelSpec::revised()));

  // Neither-stronger-nor-weaker, demonstrated by the two directions above.
  T.check("revised is weaker on Fig. 5 and stronger on Fig. 9", true,
          isValid(fig5Shape(), ModelSpec::revised()) &&
              !isValid(fig9First(), ModelSpec::revised()));

  // §3.2's simplification: with the final rule, dropping the sw Init
  // special case changes nothing on the Init shape.
  ModelSpec FinalWithSpecSw{ScRuleKind::Final, SwDefKind::SpecWithInitCase,
                            TearRuleKind::Weak, "final+spec-sw"};
  T.check("Init shape forbidden via sw special case [original]", false,
          isValid(initShape(), ModelSpec::original()));
  T.check("Init shape forbidden without the special case [revised]", false,
          isValid(initShape(), ModelSpec::revised()));
  T.check("final rule agrees under either sw definition", true,
          isValid(initShape(), FinalWithSpecSw) ==
              isValid(initShape(), ModelSpec::revised()));

  return T.finish();
}
