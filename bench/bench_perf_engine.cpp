//===- bench_perf_engine.cpp - Experiment E16 (engine performance) --------===//
///
/// \file
/// google-benchmark timings of the enumeration engine's primitives — the
/// "execution enumeration is awkward without formal-methods tooling" cost
/// the reproduction pays instead of Alloy/Coq. Documents where the wall
/// time of E6-E13 goes: relation closure, tot enumeration, outcome
/// enumeration, ARM consistency, operational simulation.
///
//===----------------------------------------------------------------------===//

#include "armv8/ArmEnumerator.h"
#include "support/LinearExtensions.h"
#include "compile/TotConstruction.h"
#include "exec/Enumerator.h"
#include "flatsim/FlatSim.h"
#include "paper/Figures.h"
#include "search/SkeletonSearch.h"

#include <benchmark/benchmark.h>

using namespace jsmm;
using namespace jsmm::paper;

namespace {

void BM_TransitiveClosure(benchmark::State &State) {
  Relation R(static_cast<unsigned>(State.range(0)));
  for (unsigned I = 0; I + 1 < R.size(); ++I)
    R.set(I, I + 1);
  R.set(R.size() / 2, 0);
  for (auto _ : State)
    benchmark::DoNotOptimize(R.transitiveClosure());
}
BENCHMARK(BM_TransitiveClosure)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_LinearExtensions(benchmark::State &State) {
  // hb of the Fig. 6a execution: the realistic tot-enumeration workload.
  CandidateExecution CE = fig6aExecution();
  Relation Hb = CE.happensBefore(SwDefKind::SpecWithInitCase);
  for (auto _ : State) {
    uint64_t Count = 0;
    forEachLinearExtension(Hb, CE.allEventsMask(),
                           [&](const std::vector<unsigned> &) {
                             ++Count;
                             return true;
                           });
    benchmark::DoNotOptimize(Count);
  }
}
BENCHMARK(BM_LinearExtensions);

void BM_ValidityCheck(benchmark::State &State) {
  CandidateExecution CE = fig6aExecution();
  CE.Tot = totalOrderFromSequence({0, 1, 2, 3, 4, 5, 6}, 7);
  for (auto _ : State)
    benchmark::DoNotOptimize(isValid(CE, ModelSpec::revised()));
}
BENCHMARK(BM_ValidityCheck);

void BM_ExistsValidTot(benchmark::State &State) {
  CandidateExecution CE = fig6aExecution();
  for (auto _ : State)
    benchmark::DoNotOptimize(isValidForSomeTot(CE, ModelSpec::revised()));
}
BENCHMARK(BM_ExistsValidTot);

void BM_SemanticDeadness(benchmark::State &State) {
  CandidateExecution CE = fig6aExecution();
  for (auto _ : State)
    benchmark::DoNotOptimize(isInvalidForAllTot(CE, ModelSpec::original()));
}
BENCHMARK(BM_SemanticDeadness);

void BM_EnumerateFig1Outcomes(benchmark::State &State) {
  Program P = fig1Program();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        enumerateOutcomes(P, ModelSpec::revised()).Allowed.size());
}
BENCHMARK(BM_EnumerateFig1Outcomes);

void BM_EnumerateFig6Outcomes(benchmark::State &State) {
  Program P = fig6Program();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        enumerateOutcomes(P, ModelSpec::original()).Allowed.size());
}
BENCHMARK(BM_EnumerateFig6Outcomes);

void BM_ArmConsistency(benchmark::State &State) {
  CompiledProgram CP = compileToArm(fig6Program());
  std::vector<ArmExecution> Execs;
  forEachArmExecution(CP.Arm, [&](const ArmExecution &X, const Outcome &) {
    Execs.push_back(X);
    return Execs.size() < 64;
  });
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(isArmConsistent(Execs[I]));
    I = (I + 1) % Execs.size();
  }
}
BENCHMARK(BM_ArmConsistency);

void BM_ArmEnumerateMP(benchmark::State &State) {
  ArmProgram P = armMP(true, true);
  for (auto _ : State)
    benchmark::DoNotOptimize(enumerateArmOutcomes(P).Allowed.size());
}
BENCHMARK(BM_ArmEnumerateMP);

void BM_FlatSimMP(benchmark::State &State) {
  ArmProgram P = armMP(false, false);
  for (auto _ : State)
    benchmark::DoNotOptimize(runFlat(P).DistinctExecutions);
}
BENCHMARK(BM_FlatSimMP);

void BM_CompileCheckFig6(benchmark::State &State) {
  Program P = fig6Program();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        checkCompilationForProgram(P, ModelSpec::revised()).ArmConsistent);
}
BENCHMARK(BM_CompileCheckFig6);

void BM_SkeletonSweep4Events(benchmark::State &State) {
  SearchConfig Cfg;
  Cfg.MinEvents = 4;
  Cfg.MaxEvents = 4;
  Cfg.NumLocs = 2;
  for (auto _ : State) {
    uint64_t Count = 0;
    forEachSkeletonCandidate(
        Cfg,
        [&](const CandidateExecution &, const ArmExecution &) {
          ++Count;
          return true;
        },
        nullptr);
    benchmark::DoNotOptimize(Count);
  }
}
BENCHMARK(BM_SkeletonSweep4Events);

} // namespace

BENCHMARK_MAIN();
