//===- bench_perf_engine.cpp - Experiment E16 (engine performance) --------===//
///
/// \file
/// google-benchmark timings of the unified execution engine — the
/// "execution enumeration is awkward without formal-methods tooling" cost
/// the reproduction pays instead of Alloy/Coq. Documents where the wall
/// time of E6-E13 goes (relation closure, tot enumeration, outcome
/// enumeration, ARM consistency, operational simulation) and measures what
/// the engine's incremental pruning and sharded threading buy over the
/// seed's generate-then-filter loops on the Fig. 9 shape family.
///
/// Usage: bench_perf_engine [--threads=N] [google-benchmark flags]
///
/// Before the micro-benchmarks run, a headline comparison enumerates the
/// Fig. 9 shape programs with (a) the seed-compatible engine (single
/// thread, no pruning), (b) the pruned single-threaded engine and (c) the
/// pruned engine with N threads (default 4), and prints the speedups.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "engine/ExecutionEngine.h"
#include "flatsim/FlatSim.h"
#include "compile/Compile.h"
#include "compile/TotConstruction.h"
#include "paper/Figures.h"
#include "search/SkeletonSearch.h"
#include "support/LinearExtensions.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace jsmm;
using namespace jsmm::paper;

namespace {

unsigned RequestedThreads = 4;

/// The Fig. 9/10 shape family as litmus programs: SeqCst/unordered writes
/// racing with guarded and unguarded reads on two cells — the shapes whose
/// validity flips between the original and revised SC rules, scaled so the
/// justification space is large enough to measure.
std::vector<Program> fig9ShapePrograms() {
  std::vector<Program> Family;
  {
    // Fig. 9 first shape flavour: SC writes on both threads, a plain read
    // behind the SC pair.
    Program P(8);
    P.Name = "fig9-shape1";
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0).sc(), 1);
    T0.load(Acc::u32(4));
    ThreadBuilder T1 = P.thread();
    T1.store(Acc::u32(4).sc(), 2);
    T1.load(Acc::u32(0));
    Family.push_back(P);
  }
  {
    // Fig. 9 second shape flavour: unordered write before an SC read of
    // the same cell, SC write on the other thread.
    Program P(8);
    P.Name = "fig9-shape2";
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0), 1);
    T0.load(Acc::u32(0).sc());
    T0.load(Acc::u32(4));
    ThreadBuilder T1 = P.thread();
    T1.store(Acc::u32(0).sc(), 2);
    T1.store(Acc::u32(4), 2);
    Family.push_back(P);
  }
  {
    // Three-thread sweep over both cells: the largest justification space
    // of the family (every read has four candidate writers per byte).
    Program P(8);
    P.Name = "fig9-sweep3";
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0).sc(), 1);
    T0.load(Acc::u32(4));
    ThreadBuilder T1 = P.thread();
    T1.store(Acc::u32(4).sc(), 2);
    T1.load(Acc::u32(0));
    ThreadBuilder T2 = P.thread();
    T2.store(Acc::u32(0), 3);
    T2.store(Acc::u32(4), 4);
    Family.push_back(P);
  }
  return Family;
}

double enumerateFamilyMs(EngineConfig Cfg) {
  ExecutionEngine Engine(Cfg);
  auto Start = std::chrono::steady_clock::now();
  for (const Program &P : fig9ShapePrograms()) {
    benchmark::DoNotOptimize(
        Engine.enumerate(P, JsModel(ModelSpec::original())).Allowed.size());
    benchmark::DoNotOptimize(
        Engine.enumerate(P, JsModel(ModelSpec::revised())).Allowed.size());
  }
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

/// \returns the failed-claim count (0 on success), for main's exit code.
int headlineComparison() {
  // Warm-up pass so first-touch allocation noise doesn't skew the seed run.
  enumerateFamilyMs(EngineConfig{1, false});
  double SeedMs = enumerateFamilyMs(EngineConfig::seedCompatible());
  double PrunedMs = enumerateFamilyMs(EngineConfig{1, true});
  double ShardedMs = enumerateFamilyMs(EngineConfig{RequestedThreads, true});
  // The table also writes BENCH_perf-engine.json: the speedup metrics in it
  // are what tools/perf_trend.py gates CI on (bench/perf_baseline.json).
  jsmm::bench::Table T("perf-engine",
                       "engine headline: Fig. 9 shape family, seed "
                       "generate-then-filter vs pruned vs sharded");
  T.metric("seed_ms", SeedMs, "ms");
  T.metric("pruned_ms", PrunedMs, "ms");
  T.metric("sharded_ms", ShardedMs, "ms");
  T.metric("speedup_pruned_x", SeedMs / PrunedMs);
  T.metric("speedup_sharded_x", SeedMs / ShardedMs);
  T.metric("threads", RequestedThreads);
  // The reproduction claim is "the engine beats the seed", at whichever
  // configuration suits the machine — on a single-core box sharding adds
  // overhead and pruning provides the win, so gate on the better of the two.
  T.check("engine (pruned, best of 1/" + std::to_string(RequestedThreads) +
              " threads) beats seed",
          true, std::min(PrunedMs, ShardedMs) < SeedMs);
  return T.finish();
}

void BM_TransitiveClosure(benchmark::State &State) {
  Relation R(static_cast<unsigned>(State.range(0)));
  for (unsigned I = 0; I + 1 < R.size(); ++I)
    R.set(I, I + 1);
  R.set(R.size() / 2, 0);
  for (auto _ : State)
    benchmark::DoNotOptimize(R.transitiveClosure());
}
BENCHMARK(BM_TransitiveClosure)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_LinearExtensions(benchmark::State &State) {
  // hb of the Fig. 6a execution: the realistic tot-enumeration workload.
  CandidateExecution CE = fig6aExecution();
  Relation Hb = CE.happensBefore(SwDefKind::SpecWithInitCase);
  for (auto _ : State) {
    uint64_t Count = 0;
    forEachLinearExtension(Hb, CE.allEventsMask(),
                           [&](const std::vector<unsigned> &) {
                             ++Count;
                             return true;
                           });
    benchmark::DoNotOptimize(Count);
  }
}
BENCHMARK(BM_LinearExtensions);

void BM_ValidityCheck(benchmark::State &State) {
  CandidateExecution CE = fig6aExecution();
  CE.Tot = totalOrderFromSequence({0, 1, 2, 3, 4, 5, 6}, 7);
  for (auto _ : State)
    benchmark::DoNotOptimize(isValid(CE, ModelSpec::revised()));
}
BENCHMARK(BM_ValidityCheck);

void BM_ExistsValidTot(benchmark::State &State) {
  CandidateExecution CE = fig6aExecution();
  for (auto _ : State)
    benchmark::DoNotOptimize(isValidForSomeTot(CE, ModelSpec::revised()));
}
BENCHMARK(BM_ExistsValidTot);

void BM_SemanticDeadness(benchmark::State &State) {
  CandidateExecution CE = fig6aExecution();
  for (auto _ : State)
    benchmark::DoNotOptimize(isInvalidForAllTot(CE, ModelSpec::original()));
}
BENCHMARK(BM_SemanticDeadness);

void BM_EnumerateFig1Outcomes(benchmark::State &State) {
  Program P = fig1Program();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        enumerateOutcomes(P, ModelSpec::revised()).Allowed.size());
}
BENCHMARK(BM_EnumerateFig1Outcomes);

void BM_EnumerateFig6Outcomes(benchmark::State &State) {
  Program P = fig6Program();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        enumerateOutcomes(P, ModelSpec::original()).Allowed.size());
}
BENCHMARK(BM_EnumerateFig6Outcomes);

/// The headline workload as a google-benchmark: Arg encodes the engine
/// configuration — 0 = seed-compatible, 1 = pruned single-threaded,
/// N >= 2 = pruned with N workers.
void BM_EnumerateFig9Shapes(benchmark::State &State) {
  EngineConfig Cfg = State.range(0) == 0
                         ? EngineConfig::seedCompatible()
                         : EngineConfig{static_cast<unsigned>(State.range(0)),
                                        true};
  for (auto _ : State)
    benchmark::DoNotOptimize(enumerateFamilyMs(Cfg));
}
BENCHMARK(BM_EnumerateFig9Shapes)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

void BM_ArmConsistency(benchmark::State &State) {
  CompiledProgram CP = compileToArm(fig6Program());
  std::vector<ArmExecution> Execs;
  forEachArmExecution(CP.Arm, [&](const ArmExecution &X, const Outcome &) {
    Execs.push_back(X);
    return Execs.size() < 64;
  });
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(isArmConsistent(Execs[I]));
    I = (I + 1) % Execs.size();
  }
}
BENCHMARK(BM_ArmConsistency);

void BM_ArmEnumerateMP(benchmark::State &State) {
  ArmProgram P = armMP(true, true);
  for (auto _ : State)
    benchmark::DoNotOptimize(enumerateArmOutcomes(P).Allowed.size());
}
BENCHMARK(BM_ArmEnumerateMP);

void BM_ArmEnumerateMPSharded(benchmark::State &State) {
  ArmProgram P = armMP(true, true);
  ExecutionEngine Engine(
      EngineConfig{static_cast<unsigned>(State.range(0)), true});
  for (auto _ : State)
    benchmark::DoNotOptimize(Engine.enumerate(P, Armv8Model()).Allowed.size());
}
BENCHMARK(BM_ArmEnumerateMPSharded)->Arg(2)->Arg(4);

void BM_FlatSimMP(benchmark::State &State) {
  ArmProgram P = armMP(false, false);
  for (auto _ : State)
    benchmark::DoNotOptimize(runFlat(P).DistinctExecutions);
}
BENCHMARK(BM_FlatSimMP);

void BM_CompileCheckFig6(benchmark::State &State) {
  Program P = fig6Program();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        checkCompilationForProgram(P, ModelSpec::revised()).ArmConsistent);
}
BENCHMARK(BM_CompileCheckFig6);

void BM_SkeletonSweep4Events(benchmark::State &State) {
  SearchConfig Cfg;
  Cfg.MinEvents = 4;
  Cfg.MaxEvents = 4;
  Cfg.NumLocs = 2;
  for (auto _ : State) {
    uint64_t Count = 0;
    forEachSkeletonCandidate(
        Cfg,
        [&](const CandidateExecution &, const ArmExecution &) {
          ++Count;
          return true;
        },
        nullptr);
    benchmark::DoNotOptimize(Count);
  }
}
BENCHMARK(BM_SkeletonSweep4Events);

} // namespace

int main(int argc, char **argv) {
  // Strip our own --threads=N before google-benchmark sees the arguments.
  std::vector<char *> Args;
  for (int I = 0; I < argc; ++I) {
    if (std::strncmp(argv[I], "--threads=", 10) == 0) {
      char *End = nullptr;
      unsigned long N = std::strtoul(argv[I] + 10, &End, 10);
      if (End == argv[I] + 10 || *End != '\0' || N == 0) {
        std::fprintf(stderr, "bench_perf_engine: bad thread count '%s'\n",
                     argv[I] + 10);
        return 1;
      }
      RequestedThreads = static_cast<unsigned>(N);
    } else {
      Args.push_back(argv[I]);
    }
  }
  int Argc = static_cast<int>(Args.size());
  int HeadlineFailures = headlineComparison();
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return HeadlineFailures == 0 ? 0 : 1;
}
