//===- bench_perf_engine.cpp - Experiment E16 (engine performance) --------===//
///
/// \file
/// google-benchmark timings of the unified execution engine — the
/// "execution enumeration is awkward without formal-methods tooling" cost
/// the reproduction pays instead of Alloy/Coq. Documents where the wall
/// time of E6-E13 goes (relation closure, tot enumeration, outcome
/// enumeration, ARM consistency, operational simulation) and measures what
/// the engine's incremental pruning and sharded threading buy over the
/// seed's generate-then-filter loops on the Fig. 9 shape family.
///
/// Usage: bench_perf_engine [--threads=N] [google-benchmark flags]
///
/// Before the micro-benchmarks run, a headline comparison enumerates the
/// Fig. 9 shape programs with (a) the seed-compatible engine (single
/// thread, no pruning), (b) the pruned single-threaded engine and (c) the
/// pruned engine with N threads (default 4), and prints the speedups.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "engine/ExecutionEngine.h"
#include "flatsim/FlatSim.h"
#include "litmus/PathEnum.h"
#include "compile/Compile.h"
#include "compile/TotConstruction.h"
#include "paper/Figures.h"
#include "search/SkeletonSearch.h"
#include "service/LitmusService.h"
#include "targets/UniProgram.h"
#include "solver/TotSolver.h"
#include "support/LinearExtensions.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace jsmm;
using namespace jsmm::paper;
using jsmm::bench::timedMs;

namespace {

unsigned RequestedThreads = 4;

/// The Fig. 9/10 shape family as litmus programs: SeqCst/unordered writes
/// racing with guarded and unguarded reads on two cells — the shapes whose
/// validity flips between the original and revised SC rules, scaled so the
/// justification space is large enough to measure.
std::vector<Program> fig9ShapePrograms() {
  std::vector<Program> Family;
  {
    // Fig. 9 first shape flavour: SC writes on both threads, a plain read
    // behind the SC pair.
    Program P(8);
    P.Name = "fig9-shape1";
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0).sc(), 1);
    T0.load(Acc::u32(4));
    ThreadBuilder T1 = P.thread();
    T1.store(Acc::u32(4).sc(), 2);
    T1.load(Acc::u32(0));
    Family.push_back(P);
  }
  {
    // Fig. 9 second shape flavour: unordered write before an SC read of
    // the same cell, SC write on the other thread.
    Program P(8);
    P.Name = "fig9-shape2";
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0), 1);
    T0.load(Acc::u32(0).sc());
    T0.load(Acc::u32(4));
    ThreadBuilder T1 = P.thread();
    T1.store(Acc::u32(0).sc(), 2);
    T1.store(Acc::u32(4), 2);
    Family.push_back(P);
  }
  {
    // Three-thread sweep over both cells: the largest justification space
    // of the family (every read has four candidate writers per byte).
    Program P(8);
    P.Name = "fig9-sweep3";
    ThreadBuilder T0 = P.thread();
    T0.store(Acc::u32(0).sc(), 1);
    T0.load(Acc::u32(4));
    ThreadBuilder T1 = P.thread();
    T1.store(Acc::u32(4).sc(), 2);
    T1.load(Acc::u32(0));
    ThreadBuilder T2 = P.thread();
    T2.store(Acc::u32(0), 3);
    T2.store(Acc::u32(4), 4);
    Family.push_back(P);
  }
  return Family;
}

double enumerateFamilyMs(EngineConfig Cfg) {
  ExecutionEngine Engine(Cfg);
  auto Start = std::chrono::steady_clock::now();
  for (const Program &P : fig9ShapePrograms()) {
    benchmark::DoNotOptimize(
        Engine.enumerate(P, JsModel(ModelSpec::original())).Allowed.size());
    benchmark::DoNotOptimize(
        Engine.enumerate(P, JsModel(ModelSpec::revised())).Allowed.size());
  }
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

/// Outcome-level run of the Fig. 9 family, optionally forced through the
/// heap-backed DynRelation tier — the workload of the small-path headline.
double enumerateOutcomesFamilyMs(bool ForceDyn) {
  EngineConfig Cfg;
  Cfg.ForceDynRelation = ForceDyn;
  ExecutionEngine Engine(Cfg);
  auto Start = std::chrono::steady_clock::now();
  for (const Program &P : fig9ShapePrograms()) {
    benchmark::DoNotOptimize(
        Engine.enumerateOutcomes(P, JsModel(ModelSpec::original()))
            .Allowed.size());
    benchmark::DoNotOptimize(
        Engine.enumerateOutcomes(P, JsModel(ModelSpec::revised()))
            .Allowed.size());
  }
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

/// Small-path headline: the ≤64-event fast tier (inline single-word
/// Relation) against the identical enumeration forced through the
/// heap-backed DynRelation tier. Guards the PR 5 contract that
/// generalising the relation layer did not regress the small-program fast
/// path: the inline tier must keep a clear margin over the dynamic one
/// (`speedup_smallpath_x`, floored in bench/perf_baseline.json), and the
/// two tiers must agree outcome-for-outcome.
void smallPathHeadline(jsmm::bench::Table &T) {
  enumerateOutcomesFamilyMs(false); // warm-up
  double SmallMs = enumerateOutcomesFamilyMs(false);
  double DynMs = enumerateOutcomesFamilyMs(true);
  bool Agree = true;
  EngineConfig DynCfg;
  DynCfg.ForceDynRelation = true;
  ExecutionEngine Small, Dyn(DynCfg);
  for (const Program &P : fig9ShapePrograms())
    Agree = Agree &&
            Small.enumerateOutcomes(P, JsModel(ModelSpec::revised())).Allowed ==
                Dyn.enumerateOutcomes(P, JsModel(ModelSpec::revised())).Allowed;
  T.check("fast and dynamic relation tiers agree on the Fig. 9 family",
          true, Agree);
  T.metric("smallpath_ms", SmallMs, "ms");
  T.metric("dynpath_ms", DynMs, "ms");
  T.metric("speedup_smallpath_x", DynMs / SmallMs);
}

void solverHeadline(jsmm::bench::Table &T);

//===----------------------------------------------------------------------===//
// Equivalence-aware enumeration (POR) headline
//===----------------------------------------------------------------------===//

/// An SB core padded with \p Fillers symmetric three-store writer threads
/// on private cells: the scalable workload of the POR and SAT headlines
/// (event bound 5 + 3*Fillers).
Program wideSbProgram(unsigned Fillers, const char *Name) {
  UniProgram P(2 + 3 * Fillers);
  P.Name = Name;
  unsigned T0 = P.thread();
  P.store(T0, 0, 1, Mode::Unordered);
  P.load(T0, 1, Mode::Unordered);
  unsigned T1 = P.thread();
  P.store(T1, 1, 1, Mode::Unordered);
  P.load(T1, 0, Mode::Unordered);
  for (unsigned F = 0; F < Fillers; ++F) {
    unsigned T = P.thread();
    for (unsigned L = 0; L < 3; ++L)
      P.store(T, 2 + 3 * F + L, 1 + L, Mode::Unordered);
  }
  return mixedFromUni(P);
}

/// The wide-SB/IRIW-chain family the reduction targets (the
/// largeDifferentialCorpus shapes as mixed-size programs): an SB core
/// padded with symmetric filler writer threads, where the rf sleep sets
/// collapse the byte-level justification blowup of the u32 reads, plus the
/// 9-thread IRIW chain.
std::vector<Program> porFamilyPrograms() {
  auto WideSb = wideSbProgram;
  auto IriwChain = [] {
    Program P(64);
    P.Name = "iriw-chain-9t";
    unsigned NextOff = 2;
    auto Filler = [&](ThreadBuilder &T, unsigned Count) {
      for (unsigned I = 0; I < Count; ++I)
        T.store(Acc::u8(NextOff++), 1);
    };
    ThreadBuilder W0 = P.thread();
    W0.store(Acc::u8(0), 1);
    Filler(W0, 9);
    ThreadBuilder W1 = P.thread();
    W1.store(Acc::u8(1), 1);
    Filler(W1, 9);
    ThreadBuilder R0 = P.thread();
    R0.load(Acc::u8(0));
    R0.load(Acc::u8(1));
    ThreadBuilder R1 = P.thread();
    R1.load(Acc::u8(1));
    R1.load(Acc::u8(0));
    for (unsigned T = 0; T < 5; ++T) {
      ThreadBuilder F = P.thread();
      Filler(F, 8);
    }
    return P;
  };
  std::vector<Program> Family;
  Family.push_back(WideSb(10, "sb-wide-66"));
  Family.push_back(WideSb(20, "sb-wide-126"));
  Family.push_back(IriwChain());
  return Family;
}

/// Runs the POR family under \p Cfg; accumulates explored candidates into
/// \p Candidates and the outcome tables into \p Tables.
double porFamilyMs(EngineConfig Cfg, uint64_t &Candidates,
                   std::vector<std::vector<std::string>> &Tables) {
  ExecutionEngine Engine(Cfg);
  JsModel M(ModelSpec::revised());
  Candidates = 0;
  Tables.clear();
  auto Start = std::chrono::steady_clock::now();
  for (const Program &P : porFamilyPrograms()) {
    OutcomeSummary S = Engine.enumerateOutcomes(P, M);
    Candidates += S.CandidatesConsidered;
    Tables.push_back(S.outcomeStrings());
  }
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

/// POR headline: the equivalence-aware enumeration against the exhaustive
/// walk on the wide-SB/IRIW-chain family, single-threaded so the drop is
/// the reduction's alone. Gated floors in bench/perf_baseline.json:
/// `speedup_por_x` (wall clock) and `candidate_drop_por_x` (explored
/// candidates — the reduction-effectiveness gate perf_trend.py also
/// prints as a ratio).
void porHeadline(jsmm::bench::Table &T) {
  EngineConfig Off{1, true};
  EngineConfig On{1, true, /*ForceDynRelation=*/false, /*Reduction=*/true};
  uint64_t FullCandidates = 0, ReducedCandidates = 0;
  std::vector<std::vector<std::string>> FullTables, ReducedTables;
  porFamilyMs(Off, FullCandidates, FullTables); // warm-up
  double FullMs = porFamilyMs(Off, FullCandidates, FullTables);
  double ReducedMs = porFamilyMs(On, ReducedCandidates, ReducedTables);
  T.check("reduced and unreduced verdict tables are identical on the "
          "wide-SB/IRIW-chain family",
          true, FullTables == ReducedTables);
  T.metric("por_unreduced_ms", FullMs, "ms");
  T.metric("por_reduced_ms", ReducedMs, "ms");
  T.metric("speedup_por_x", ReducedMs > 0 ? FullMs / ReducedMs : 0);
  T.metric("candidates_explored_unreduced",
           static_cast<double>(FullCandidates));
  T.metric("candidates_explored_reduced",
           static_cast<double>(ReducedCandidates));
  T.metric("candidate_drop_por_x",
           ReducedCandidates
               ? static_cast<double>(FullCandidates) / ReducedCandidates
               : 0);
}

/// SAT-tier headline: the 503-event wide-SB program (the regime the
/// engine used to reject outright at the 256-event cap) enumerated with
/// the CDCL tot solver against the propagation order-search on the same
/// workload. Gated floors in bench/perf_baseline.json: `speedup_sat_x`
/// (SAT wall clock relative to the order-search) and `sat_events_max`
/// (the program size served — a capacity floor that trips if the SAT
/// threshold or the dynamic relation cap ever shrinks back).
void satHeadline(jsmm::bench::Table &T) {
  Program Big = wideSbProgram(166, "sb-wide-503");
  unsigned Events = programEventUpperBound(Big);
  EngineConfig Cfg;
  // Measure each tot solver explicitly rather than through the automatic
  // >SatThreshold routing.
  Cfg.SatThreshold = 100000;
  ExecutionEngine Engine(Cfg);
  JsModel Sat(ModelSpec::revised(), SolverConfig::sat());
  JsModel Prop(ModelSpec::revised(), SolverConfig::propagate());
  OutcomeSummary SatR, PropR;
  Engine.enumerateOutcomes(Big, Sat); // warm-up
  double SatMs = timedMs([&] { SatR = Engine.enumerateOutcomes(Big, Sat); });
  double PropMs =
      timedMs([&] { PropR = Engine.enumerateOutcomes(Big, Prop); });
  T.check("SAT and propagation tiers agree on the 503-event program", true,
          SatR.outcomeStrings() == PropR.outcomeStrings());
  T.metric("sat_ms", SatMs, "ms");
  T.metric("sat_propagate_ms", PropMs, "ms");
  T.metric("speedup_sat_x", SatMs > 0 ? PropMs / SatMs : 0);
  T.metric("sat_events_max", Events, "events");
}

/// Batch-service headline: jobs/sec over the differential corpus (each job
/// the full 9-backend verdict table), at one worker and at the requested
/// worker count. The better figure is the `service_jobs_per_sec` metric
/// gated by tools/perf_trend.py against bench/perf_baseline.json;
/// bench_service_throughput is the full contract gate.
void serviceHeadline(jsmm::bench::Table &T) {
  std::vector<LitmusJob> Jobs = differentialCorpusJobs();
  { LitmusService Warm; Warm.run(Jobs); } // warm-up

  std::vector<unsigned> WorkerCounts = {1};
  if (RequestedThreads > 1)
    WorkerCounts.push_back(RequestedThreads); // skip a duplicate w1 leg
  double Best = 0;
  bool AllOk = true;
  for (unsigned Workers : WorkerCounts) {
    ServiceConfig Cfg;
    Cfg.Workers = Workers;
    Cfg.CacheVerdicts = false;
    LitmusService Service(Cfg);
    std::vector<LitmusJobResult> Results;
    double Ms = timedMs([&] { Results = Service.run(Jobs); });
    for (const LitmusJobResult &R : Results)
      AllOk = AllOk && R.ok();
    if (Ms > 0)
      Best = std::max(Best, 1000.0 * Jobs.size() / Ms);
  }
  T.check("batch service runs the differential corpus clean", true, AllOk);
  T.metric("service_jobs_per_sec", Best, "jobs/s");

  // Large-program leg: the 65+-event corpus served through the dynamic
  // relation tier, full verdict table per job. Gated by the
  // `large_program_jobs_per_sec` floor in bench/perf_baseline.json.
  std::vector<LitmusJob> LargeJobs = largeCorpusJobs();
  ServiceConfig LargeCfg;
  LargeCfg.CacheVerdicts = false;
  LitmusService LargeService(LargeCfg);
  { LitmusService Warm; Warm.run(LargeJobs); } // warm-up
  std::vector<LitmusJobResult> LargeResults;
  double LargeMs = timedMs([&] { LargeResults = LargeService.run(LargeJobs); });
  bool LargeOk = true;
  for (const LitmusJobResult &R : LargeResults)
    LargeOk = LargeOk && R.ok();
  T.check("batch service serves the 65+-event corpus with ok verdicts",
          true, LargeOk);
  T.metric("large_program_jobs_per_sec",
           LargeMs > 0 ? 1000.0 * LargeJobs.size() / LargeMs : 0, "jobs/s");
}

/// DRF-SC fast-path headline: statically-DRF programs — an all-SeqCst SB
/// core padded with private-byte filler threads, so analysis::classify
/// certifies them while the full 9-backend differential walk stays
/// expensive — run through the service with the static tier off (the full
/// enumeration) and on (one SC interleaving walk replicated across the
/// backends). Gated floors in bench/perf_baseline.json: `speedup_drf_x`
/// (the static-analysis ISSUE's >= 2x target) and `drf_fastpath_hits`
/// (every job of the family must actually be served by the fast path, not
/// silently fall through to the full walk).
void drfHeadline(jsmm::bench::Table &T) {
  auto DrfSb = [](unsigned Fillers, const char *Name) {
    UniProgram P(2 + 3 * Fillers);
    P.Name = Name;
    unsigned T0 = P.thread();
    P.store(T0, 0, 1, Mode::SeqCst);
    P.load(T0, 1, Mode::SeqCst);
    unsigned T1 = P.thread();
    P.store(T1, 1, 1, Mode::SeqCst);
    P.load(T1, 0, Mode::SeqCst);
    for (unsigned F = 0; F < Fillers; ++F) {
      unsigned Th = P.thread();
      for (unsigned L = 0; L < 3; ++L)
        P.store(Th, 2 + 3 * F + L, 1 + L, Mode::Unordered);
    }
    return mixedFromUni(P);
  };
  std::vector<LitmusJob> FastJobs;
  for (const auto &[Fillers, Name] :
       {std::pair<unsigned, const char *>{4, "drf-sb-17"},
        {10, "drf-sb-66"},
        {20, "drf-sb-126"}}) {
    LitmusFile F;
    F.P = DrfSb(Fillers, Name);
    LitmusJob J;
    J.Name = Name;
    J.Model = "differential";
    J.Litmus = emitLitmus(F);
    FastJobs.push_back(std::move(J));
  }
  std::vector<LitmusJob> FullJobs = FastJobs;
  for (LitmusJob &J : FullJobs)
    J.Static = false;

  ServiceConfig Cfg;
  Cfg.CacheVerdicts = false;
  LitmusService Service(Cfg);
  Service.run(FastJobs); // warm-up
  std::vector<LitmusJobResult> FastResults, FullResults;
  double FastMs = timedMs([&] { FastResults = Service.run(FastJobs); });
  double FullMs = timedMs([&] { FullResults = Service.run(FullJobs); });
  unsigned Hits = 0;
  bool Agree = FastResults.size() == FullResults.size();
  for (size_t I = 0; I < FastResults.size() && Agree; ++I) {
    Hits += FastResults[I].DrfFastPath;
    Agree = FastResults[I].ok() && FullResults[I].ok() &&
            FastResults[I].AllowedByBackend == FullResults[I].AllowedByBackend;
  }
  T.check("DRF fast-path verdict tables match the full enumeration", true,
          Agree);
  T.metric("drf_full_ms", FullMs, "ms");
  T.metric("drf_fast_ms", FastMs, "ms");
  T.metric("speedup_drf_x", FastMs > 0 ? FullMs / FastMs : 0);
  T.metric("drf_fastpath_hits", Hits, "jobs");
}

/// Value-aware static pruning headline: a racy unordered SB core (the
/// DRF certificate fails, so the full walk runs) padded with private
/// constant-read fillers — an unconditional store before each private
/// load makes the load statically constant (the init write is shadowed
/// and the later same-thread store is excluded by the post-read rule),
/// and a branch on the constant register is statically dead, so the
/// value tier drops whole path combinations (2^(2*fillers) combos
/// collapse to one). The program's final read keeps three covering
/// writers statically narrowed to one; with no further read to trigger
/// the partial-admission check, the unpruned walk completes (and then
/// rejects) the extra leaves, so the completed-candidate counts diverge
/// deterministically. Gated floors in bench/perf_baseline.json:
/// `speedup_staticprune_x` (wall clock) and `rf_candidates_dropped_x`
/// (completed rf candidates without the value tier over those with it —
/// the pruning-effectiveness gate, >= 2x on this family).
void staticPruneHeadline(jsmm::bench::Table &T) {
  auto Prunable = [](unsigned Fillers, const char *Name) {
    Program P(32);
    P.Name = Name;
    for (unsigned Side = 0; Side < 2; ++Side) {
      ThreadBuilder B = P.thread();
      B.store(Acc::u8(Side), 1); // racy SB core on bytes 0/1
      for (unsigned F = 0; F < Fillers; ++F) {
        unsigned Byte = 2 + Fillers * Side + F;
        B.store(Acc::u8(Byte), 7);
        Reg R = B.load(Acc::u8(Byte)); // constant 7: init shadowed
        B.store(Acc::u8(Byte), 3);     // post-read: excluded for R
        B.ifEq(R, 0, [&](ThreadBuilder &C) { C.load(Acc::u8(1 - Side)); });
      }
      B.load(Acc::u8(1 - Side));
      if (Side == 1) {
        // The program's last read: three covering writers (init plus
        // both stores), statically narrowed to the second store.
        unsigned Byte = 2 + 2 * Fillers;
        B.store(Acc::u8(Byte), 7);
        B.store(Acc::u8(Byte), 3);
        B.load(Acc::u8(Byte));
      }
    }
    return P;
  };
  std::vector<Program> Family;
  for (const auto &[Fillers, Name] :
       {std::pair<unsigned, const char *>{2, "staticprune-sb-23"},
        {4, "staticprune-sb-39"},
        {6, "staticprune-sb-55"}})
    Family.push_back(Prunable(Fillers, Name));

  uint64_t RfPruned = 0, PathsPruned = 0;
  auto FamilyMs = [&](bool Static, uint64_t &Candidates,
                      std::vector<std::vector<std::string>> &Tables) {
    EngineConfig Cfg;
    Cfg.StaticFastPath = Static;
    ExecutionEngine Engine(Cfg);
    Candidates = 0;
    Tables.clear();
    return timedMs([&] {
      for (const Program &P : Family)
        for (const ModelSpec &Spec :
             {ModelSpec::original(), ModelSpec::revised()}) {
          OutcomeSummary S = Engine.enumerateOutcomes(P, JsModel(Spec));
          Candidates += S.CandidatesConsidered;
          Tables.push_back(S.outcomeStrings());
          RfPruned += Engine.Stats.StaticRfPruned;
          PathsPruned += Engine.Stats.StaticPathsPruned;
        }
    });
  };
  uint64_t WarmCandidates, FullCandidates, PrunedCandidates;
  std::vector<std::vector<std::string>> WarmTables, FullTables, PrunedTables;
  FamilyMs(true, WarmCandidates, WarmTables); // warm-up
  RfPruned = PathsPruned = 0;
  double FullMs = FamilyMs(false, FullCandidates, FullTables);
  double PrunedMs = FamilyMs(true, PrunedCandidates, PrunedTables);
  T.check("value-pruned and full verdict tables are identical on the "
          "racy-but-prunable family",
          true, FullTables == PrunedTables);
  T.check("static rf and path pruning both fire on the family", true,
          RfPruned > 0 && PathsPruned > 0);
  T.metric("staticprune_full_ms", FullMs, "ms");
  T.metric("staticprune_pruned_ms", PrunedMs, "ms");
  T.metric("speedup_staticprune_x", PrunedMs > 0 ? FullMs / PrunedMs : 0);
  T.metric("candidates_explored_static_full",
           static_cast<double>(FullCandidates));
  T.metric("candidates_explored_static_pruned",
           static_cast<double>(PrunedCandidates));
  T.metric("rf_candidates_dropped_x",
           PrunedCandidates
               ? static_cast<double>(FullCandidates) / PrunedCandidates
               : 0);
}

/// \returns the failed-claim count (0 on success), for main's exit code.
int headlineComparison() {
  // Warm-up pass so first-touch allocation noise doesn't skew the seed run.
  enumerateFamilyMs(EngineConfig{1, false});
  double SeedMs = enumerateFamilyMs(EngineConfig::seedCompatible());
  double PrunedMs = enumerateFamilyMs(EngineConfig{1, true});
  double ShardedMs = enumerateFamilyMs(EngineConfig{RequestedThreads, true});
  // The table also writes BENCH_perf-engine.json: the speedup metrics in it
  // are what tools/perf_trend.py gates CI on (bench/perf_baseline.json).
  jsmm::bench::Table T("perf-engine",
                       "engine headline: Fig. 9 shape family, seed "
                       "generate-then-filter vs pruned vs sharded");
  T.metric("seed_ms", SeedMs, "ms");
  T.metric("pruned_ms", PrunedMs, "ms");
  T.metric("sharded_ms", ShardedMs, "ms");
  T.metric("speedup_pruned_x", SeedMs / PrunedMs);
  T.metric("speedup_sharded_x", SeedMs / ShardedMs);
  T.metric("threads", RequestedThreads);
  // The reproduction claim is "the engine beats the seed", at whichever
  // configuration suits the machine — on a single-core box sharding adds
  // overhead and pruning provides the win, so gate on the better of the two.
  T.check("engine (pruned, best of 1/" + std::to_string(RequestedThreads) +
              " threads) beats seed",
          true, std::min(PrunedMs, ShardedMs) < SeedMs);
  smallPathHeadline(T);
  porHeadline(T);
  solverHeadline(T);
  satHeadline(T);
  serviceHeadline(T);
  drfHeadline(T);
  staticPruneHeadline(T);
  return T.finish();
}

//===----------------------------------------------------------------------===//
// Seed-path reconstructions for the solver/sweep headlines
//===----------------------------------------------------------------------===//
//
// The seed decided every tot-existence question by enumerating the linear
// extensions of hb (no constraint extraction, no mid-prefix exit) and every
// coherence-existence question by walking all completions (no prefix
// refutation). Both loops are reconstructed here from the public kernel
// APIs, so the headline baselines keep measuring the seed algorithm even
// as the library's own fast paths evolve.

/// Seed isValidForSomeTot: exhaustive linear-extension search.
bool seedValidForSomeTot(const CandidateExecution &CE, ModelSpec Spec) {
  const DerivedTriple &D = CE.derived(Spec.Sw);
  if (!checkTotIndependentAxioms(CE, D, Spec))
    return false;
  if (!D.Hb.isAcyclic())
    return false;
  bool Found = false;
  forEachLinearExtension(
      D.Hb, CE.allEventsMask(), [&](const std::vector<unsigned> &Seq) {
        Relation Tot = totalOrderFromSequence(Seq, CE.numEvents());
        if (checkScAtomics(CE, D, Spec.Sc, Tot)) {
          Found = true;
          return false;
        }
        return true;
      });
  return Found;
}

/// Seed ArmDerived::compute: every dob/aob/bob term built unconditionally
/// (the library now skips empty dependency and fence classes).
Relation seedArmOb(const ArmExecution &X) {
  unsigned N = X.numEvents();
  Relation Rf = X.readsFrom();
  Relation Co = X.coherence();
  Relation Fr = X.fromReads();
  Relation Rfe = X.externalPart(Rf);
  Relation Coe = X.externalPart(Co);
  Relation Fre = X.externalPart(Fr);
  Relation Rfi = X.internalPart(Rf);
  Relation Coi = X.internalPart(Co);
  Relation Obs = Rfe.unioned(Coe).unioned(Fre);

  uint64_t Writes =
      X.eventsWhere([](const ArmEvent &E) { return E.isWrite(); });
  uint64_t Reads = X.eventsWhere([](const ArmEvent &E) { return E.isRead(); });
  uint64_t Acq = X.eventsWhere(
      [](const ArmEvent &E) { return E.isRead() && E.Acquire; });
  uint64_t Rel = X.eventsWhere(
      [](const ArmEvent &E) { return E.isWrite() && E.Release; });
  uint64_t DmbFull = X.eventsWhere(
      [](const ArmEvent &E) { return E.Kind == ArmKind::DmbFull; });
  uint64_t DmbLd = X.eventsWhere(
      [](const ArmEvent &E) { return E.Kind == ArmKind::DmbLd; });
  uint64_t DmbSt = X.eventsWhere(
      [](const ArmEvent &E) { return E.Kind == ArmKind::DmbSt; });
  uint64_t Isb = X.eventsWhere(
      [](const ArmEvent &E) { return E.Kind == ArmKind::Isb; });
  uint64_t All = X.allEventsMask();
  const Relation &Po = X.Po;
  auto Restrict = [&](uint64_t A, const Relation &R, uint64_t B) {
    return R.restricted(A, B);
  };
  Relation CtrlOrAddrPo = X.CtrlDep.unioned(X.AddrDep.compose(Po));
  Relation Dob =
      X.AddrDep.unioned(X.DataDep)
          .unioned(Restrict(All, X.CtrlDep, Writes))
          .unioned(CtrlOrAddrPo.intersected(Relation::product(All, Isb, N))
                       .compose(Restrict(Isb, Po, Reads)))
          .unioned(X.AddrDep.compose(Restrict(All, Po, Writes)))
          .unioned(X.CtrlDep.unioned(X.DataDep).compose(Coi))
          .unioned(X.AddrDep.unioned(X.DataDep).compose(Rfi));
  uint64_t RmwWrites = 0;
  X.Rmw.forEachPair([&](unsigned, unsigned W) {
    RmwWrites |= uint64_t(1) << W;
  });
  Relation Aob = X.Rmw.unioned(Restrict(RmwWrites, Rfi, Acq));
  Relation PoL = Restrict(All, Po, Rel);
  Relation Bob =
      Restrict(All, Po, DmbFull).compose(Restrict(DmbFull, Po, All));
  Bob.unionWith(Restrict(Rel, Po, Acq));
  Bob.unionWith(Restrict(Reads, Po, DmbLd).compose(Restrict(DmbLd, Po, All)));
  Bob.unionWith(Restrict(Acq, Po, All));
  Bob.unionWith(
      Restrict(Writes, Po, DmbSt).compose(Restrict(DmbSt, Po, Writes)));
  Bob.unionWith(PoL);
  Bob.unionWith(PoL.compose(Coi));
  return Obs.unioned(Dob).unioned(Aob).unioned(Bob).transitiveClosure();
}

/// Seed isArmConsistent: internal axiom, then the full seed derivation.
bool seedIsArmConsistent(const ArmExecution &X) {
  if (!checkArmInternal(X))
    return false;
  if (!seedArmOb(X).isIrreflexive())
    return false;
  Relation Fre = X.externalPart(X.fromReads());
  Relation Coe = X.externalPart(X.coherence());
  return X.Rmw.intersected(Fre.compose(Coe)).empty();
}

/// Seed armConsistentForSomeCo: unpruned completion walk.
bool seedArmConsistentForSomeCo(const ArmExecution &X) {
  ArmExecution Work = X;
  Work.Co = Work.computeGranules();
  bool Found = false;
  forEachCoherenceCompletion(Work, [&] {
    if (!seedIsArmConsistent(Work))
      return true;
    Found = true;
    return false;
  });
  return Found;
}

/// The 4-event Init-synchronization compilation counter-example (dead
/// under the original model), padded with \p K unordered writes on fresh
/// threads and bytes: hb stays sparse, so the seed's linear-extension
/// count grows factorially with K while the propagation solver's conflict
/// detection stays polynomial — the workload the ROADMAP's "factorial hot
/// loop" note is about (the paper's Alloy bound of 8 events / 20
/// locations lives well inside this regime).
CandidateExecution paddedDeadExecution(unsigned K) {
  std::vector<Event> Evs;
  Evs.push_back(makeInit(0, 2 + K));
  Evs.push_back(makeWrite(1, 0, Mode::SeqCst, 0, 1, 1));
  Evs.push_back(makeRead(2, 0, Mode::SeqCst, 1, 1, 0));
  Evs.push_back(makeWrite(3, 1, Mode::Unordered, 1, 1, 3));
  Evs.push_back(makeRead(4, 1, Mode::SeqCst, 0, 1, 0));
  for (unsigned I = 0; I < K; ++I)
    Evs.push_back(makeWrite(5 + I, 2 + static_cast<int>(I), Mode::Unordered,
                            2 + I, 1, 1));
  CandidateExecution CE(std::move(Evs));
  CE.Sb.set(1, 2);
  CE.Sb.set(3, 4);
  CE.Rbf.push_back({1, 0, 2});
  CE.Rbf.push_back({0, 0, 4});
  return CE;
}

SearchConfig sec52Config() {
  SearchConfig Cfg;
  Cfg.MinEvents = 2;
  Cfg.MaxEvents = 6;
  Cfg.NumLocs = 2;
  Cfg.Js = ModelSpec::original();
  Cfg.Deadness = SearchConfig::DeadnessMode::Semantic;
  Cfg.ExcludeInitSynchronization = true;
  return Cfg;
}

/// The seed's §5.2 search loop (generate, brute-force deadness, unpruned
/// coherence witness).
bool seedSec52Search() {
  SearchConfig Cfg = sec52Config();
  bool Found = false;
  forEachSkeletonCandidate(
      Cfg,
      [&](const CandidateExecution &Js, const ArmExecution &Arm) {
        for (const Event &R : Js.Events) {
          if (!R.isRead() || R.Ord != Mode::SeqCst)
            continue;
          bool OnlyInit = true;
          for (const RbfEdge &E : Js.Rbf)
            if (E.Reader == R.Id && Js.Events[E.Writer].Ord != Mode::Init)
              OnlyInit = false;
          if (OnlyInit)
            return true;
        }
        if (seedValidForSomeTot(Js, Cfg.Js))
          return true; // not semantically dead
        if (!seedArmConsistentForSomeCo(Arm))
          return true;
        Found = true;
        return false;
      },
      nullptr);
  return Found;
}

SearchConfig sec53Config() {
  SearchConfig Cfg;
  Cfg.MinEvents = 2;
  Cfg.MaxEvents = 4;
  Cfg.NumLocs = 2;
  Cfg.Js = ModelSpec::revised();
  return Cfg;
}

/// The seed's §5.3 loop: every coherence completion consistency-checked,
/// the construction verified on the consistent ones.
uint64_t seedSec53Check() {
  SearchConfig Cfg = sec53Config();
  uint64_t Consistent = 0;
  forEachSkeletonCandidate(
      Cfg,
      [&](const CandidateExecution &Js, const ArmExecution &Arm) {
        ArmExecution Work = Arm;
        Work.Co = Work.computeGranules();
        forEachCoherenceCompletion(Work, [&] {
          if (!seedIsArmConsistent(Work))
            return true;
          ++Consistent;
          TranslationResult TR;
          TR.Js = Js;
          TR.JsOfArm.resize(Work.numEvents());
          for (unsigned I = 0; I < Work.numEvents(); ++I)
            TR.JsOfArm[I] = I;
          Relation Tot;
          if (constructTot(TR, Work, &Tot)) {
            CandidateExecution WithTot = Js;
            WithTot.Tot = Tot;
            benchmark::DoNotOptimize(isValid(WithTot, Cfg.Js));
          }
          return true;
        });
        return true;
      },
      nullptr);
  return Consistent;
}

/// Headline comparison of the §5.2/§5.3 sweeps and the per-candidate
/// solver against their seed paths, appended to the perf-engine table so
/// the speedup metrics land in BENCH_perf-engine.json and are gated by
/// tools/perf_trend.py against bench/perf_baseline.json.
void solverHeadline(jsmm::bench::Table &T) {
  // Solver headline: the paper-scale padded dead execution (11 events,
  // sparse hb: 907200 linear extensions, all of which the seed's deadness
  // decision enumerated). The propagation solver derives the conflict at
  // fixpoint without enumerating anything, so the gap is four orders of
  // magnitude; the committed floor only gates the order of magnitude.
  {
    CandidateExecution Big = paddedDeadExecution(6);
    bool SeedValid = true, BruteValid = true, PropValid = true;
    double SolverSeedMs = timedMs([&] {
      SeedValid = seedValidForSomeTot(Big, ModelSpec::original());
    });
    double SolverBruteMs = timedMs([&] {
      BruteValid = isValidForSomeTot(Big, ModelSpec::original(), nullptr,
                                     totSolver(SolverKind::Brute));
    });
    // The propagation run is microseconds; loop it for a stable reading.
    constexpr unsigned PropIters = 1000;
    double SolverPropMs = timedMs([&] {
      for (unsigned I = 0; I < PropIters; ++I)
        PropValid = isValidForSomeTot(Big, ModelSpec::original(), nullptr,
                                      totSolver(SolverKind::Propagate));
    }) / PropIters;
    T.check("solvers agree with the seed decision procedure (dead)", true,
            !SeedValid && !BruteValid && !PropValid);
    T.metric("solver_seed_ms", SolverSeedMs, "ms");
    T.metric("solver_brute_ms", SolverBruteMs, "ms");
    T.metric("solver_propagate_ms", SolverPropMs, "ms");
    T.metric("speedup_solver_x", SolverSeedMs / SolverPropMs);
  }

  // §5.2: the full counter-example search (E7's headline row).
  bool SeedFound = false, FastFound = false;
  double Sec52SeedMs = timedMs([&] { SeedFound = seedSec52Search(); });
  double Sec52FastMs = timedMs([&] {
    SearchConfig Cfg = sec52Config();
    Cfg.Threads = 0; // one worker per hardware thread
    FastFound = searchArmCompilationCex(Cfg).has_value();
  });
  T.check("fast and seed sec52 searches agree", true,
          SeedFound == FastFound);
  T.metric("sec52_seed_ms", Sec52SeedMs, "ms");
  T.metric("sec52_fast_ms", Sec52FastMs, "ms");
  T.metric("speedup_sec52_x", Sec52SeedMs / Sec52FastMs);

  // §5.3: the bounded compilation check at a 4-event bound.
  uint64_t SeedConsistent = 0;
  BoundedCompilationReport FastR;
  double Sec53SeedMs = timedMs([&] { SeedConsistent = seedSec53Check(); });
  double Sec53FastMs = timedMs([&] {
    SearchConfig Cfg = sec53Config();
    Cfg.Threads = 0; // one worker per hardware thread
    FastR = boundedCompilationCheck(Cfg);
  });
  T.check("fast and seed sec53 sweeps see the same consistent executions",
          true, SeedConsistent == FastR.ArmConsistentExecutions);
  T.check("construction holds at the 4-event bound", true, FastR.holds());
  T.metric("sec53_seed_ms", Sec53SeedMs, "ms");
  T.metric("sec53_fast_ms", Sec53FastMs, "ms");
  T.metric("speedup_sec53_x", Sec53SeedMs / Sec53FastMs);
  T.note("seed baselines replay the seed ALGORITHM (exhaustive linear "
         "extensions, unpruned coherence walks, unconditional dob/aob/bob) "
         "on the current kernel, which this PR also made faster "
         "(allocation-free relations, short-circuited derivations) — a far "
         "stricter baseline than the seed commit's binary, which ran the "
         "sec52 search 3.5x slower than today's sweep on the dev machine");
}

void BM_TransitiveClosure(benchmark::State &State) {
  Relation R(static_cast<unsigned>(State.range(0)));
  for (unsigned I = 0; I + 1 < R.size(); ++I)
    R.set(I, I + 1);
  R.set(R.size() / 2, 0);
  for (auto _ : State)
    benchmark::DoNotOptimize(R.transitiveClosure());
}
BENCHMARK(BM_TransitiveClosure)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_LinearExtensions(benchmark::State &State) {
  // hb of the Fig. 6a execution: the realistic tot-enumeration workload.
  CandidateExecution CE = fig6aExecution();
  Relation Hb = CE.happensBefore(SwDefKind::SpecWithInitCase);
  for (auto _ : State) {
    uint64_t Count = 0;
    forEachLinearExtension(Hb, CE.allEventsMask(),
                           [&](const std::vector<unsigned> &) {
                             ++Count;
                             return true;
                           });
    benchmark::DoNotOptimize(Count);
  }
}
BENCHMARK(BM_LinearExtensions);

void BM_ValidityCheck(benchmark::State &State) {
  CandidateExecution CE = fig6aExecution();
  CE.Tot = totalOrderFromSequence({0, 1, 2, 3, 4, 5, 6}, 7);
  for (auto _ : State)
    benchmark::DoNotOptimize(isValid(CE, ModelSpec::revised()));
}
BENCHMARK(BM_ValidityCheck);

void BM_ExistsValidTot(benchmark::State &State) {
  CandidateExecution CE = fig6aExecution();
  for (auto _ : State)
    benchmark::DoNotOptimize(isValidForSomeTot(CE, ModelSpec::revised()));
}
BENCHMARK(BM_ExistsValidTot);

void BM_SemanticDeadness(benchmark::State &State) {
  CandidateExecution CE = fig6aExecution();
  for (auto _ : State)
    benchmark::DoNotOptimize(isInvalidForAllTot(CE, ModelSpec::original()));
}
BENCHMARK(BM_SemanticDeadness);

void BM_EnumerateFig1Outcomes(benchmark::State &State) {
  Program P = fig1Program();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        enumerateOutcomes(P, ModelSpec::revised()).Allowed.size());
}
BENCHMARK(BM_EnumerateFig1Outcomes);

void BM_EnumerateFig6Outcomes(benchmark::State &State) {
  Program P = fig6Program();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        enumerateOutcomes(P, ModelSpec::original()).Allowed.size());
}
BENCHMARK(BM_EnumerateFig6Outcomes);

/// The headline workload as a google-benchmark: Arg encodes the engine
/// configuration — 0 = seed-compatible, 1 = pruned single-threaded,
/// N >= 2 = pruned with N workers.
void BM_EnumerateFig9Shapes(benchmark::State &State) {
  EngineConfig Cfg = State.range(0) == 0
                         ? EngineConfig::seedCompatible()
                         : EngineConfig{static_cast<unsigned>(State.range(0)),
                                        true};
  for (auto _ : State)
    benchmark::DoNotOptimize(enumerateFamilyMs(Cfg));
}
BENCHMARK(BM_EnumerateFig9Shapes)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

void BM_ArmConsistency(benchmark::State &State) {
  CompiledProgram CP = compileToArm(fig6Program());
  std::vector<ArmExecution> Execs;
  forEachArmExecution(CP.Arm, [&](const ArmExecution &X, const Outcome &) {
    Execs.push_back(X);
    return Execs.size() < 64;
  });
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(isArmConsistent(Execs[I]));
    I = (I + 1) % Execs.size();
  }
}
BENCHMARK(BM_ArmConsistency);

void BM_ArmEnumerateMP(benchmark::State &State) {
  ArmProgram P = armMP(true, true);
  for (auto _ : State)
    benchmark::DoNotOptimize(enumerateArmOutcomes(P).Allowed.size());
}
BENCHMARK(BM_ArmEnumerateMP);

void BM_ArmEnumerateMPSharded(benchmark::State &State) {
  ArmProgram P = armMP(true, true);
  ExecutionEngine Engine(
      EngineConfig{static_cast<unsigned>(State.range(0)), true});
  for (auto _ : State)
    benchmark::DoNotOptimize(Engine.enumerate(P, Armv8Model()).Allowed.size());
}
BENCHMARK(BM_ArmEnumerateMPSharded)->Arg(2)->Arg(4);

void BM_FlatSimMP(benchmark::State &State) {
  ArmProgram P = armMP(false, false);
  for (auto _ : State)
    benchmark::DoNotOptimize(runFlat(P).DistinctExecutions);
}
BENCHMARK(BM_FlatSimMP);

void BM_CompileCheckFig6(benchmark::State &State) {
  Program P = fig6Program();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        checkCompilationForProgram(P, ModelSpec::revised()).ArmConsistent);
}
BENCHMARK(BM_CompileCheckFig6);

void BM_SkeletonSweep4Events(benchmark::State &State) {
  SearchConfig Cfg;
  Cfg.MinEvents = 4;
  Cfg.MaxEvents = 4;
  Cfg.NumLocs = 2;
  for (auto _ : State) {
    uint64_t Count = 0;
    forEachSkeletonCandidate(
        Cfg,
        [&](const CandidateExecution &, const ArmExecution &) {
          ++Count;
          return true;
        },
        nullptr);
    benchmark::DoNotOptimize(Count);
  }
}
BENCHMARK(BM_SkeletonSweep4Events);

} // namespace

int main(int argc, char **argv) {
  // Strip our own --threads=N before google-benchmark sees the arguments.
  std::vector<char *> Args;
  for (int I = 0; I < argc; ++I) {
    if (std::strncmp(argv[I], "--threads=", 10) == 0) {
      char *End = nullptr;
      unsigned long N = std::strtoul(argv[I] + 10, &End, 10);
      if (End == argv[I] + 10 || *End != '\0' || N == 0) {
        std::fprintf(stderr, "bench_perf_engine: bad thread count '%s'\n",
                     argv[I] + 10);
        return 1;
      }
      RequestedThreads = static_cast<unsigned>(N);
    } else {
      Args.push_back(argv[I]);
    }
  }
  int Argc = static_cast<int>(Args.size());
  int HeadlineFailures = headlineComparison();
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return HeadlineFailures == 0 ? 0 : 1;
}
