//===- bench_sec54_search_scdrf.cpp - Experiment E9 (§5.4) ----------------===//
///
/// \file
/// Regenerates the SC-DRF counter-example search: in the original model,
/// the minimal counter-example (a valid, data-race-free, non-sequentially-
/// consistent execution) has 4 events on 1 location — smaller than the
/// 6-event / 2-location example hand-found by Watt et al. (OOPSLA 2019).
/// The revised model admits none within the bound (Thm 6.1's bounded
/// shadow).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/DataRace.h"
#include "core/SeqConsistency.h"
#include "search/SkeletonSearch.h"

using namespace jsmm;
using namespace jsmm::bench;

int main() {
  Table T("E9: counter-example search, SC-DRF",
          "Watt et al. PLDI 2020, section 5.4, Fig. 8");

  SearchConfig Cfg;
  Cfg.MinEvents = 2;
  Cfg.MaxEvents = 4;
  Cfg.NumLocs = 2;
  Cfg.Js = ModelSpec::original();
  SearchStats Stats;
  std::optional<SkeletonCex> Cex;
  double Ms = timedMs([&] { Cex = searchScDrfCex(Cfg, &Stats); });

  T.check("SC-DRF counter-example found [original]", true, Cex.has_value());
  if (Cex) {
    T.row("minimal size (events)", "4", std::to_string(Cex->NumEvents),
          Cex->NumEvents == 4);
    T.row("minimal size (locations)", "1", std::to_string(Cex->NumLocs),
          Cex->NumLocs == 1);
    T.check("witness is valid in the original model", true,
            isValidForSomeTot(Cex->Js, ModelSpec::original()));
    T.check("witness is race-free", true,
            isRaceFree(Cex->Js, ModelSpec::original()));
    T.check("witness is not sequentially consistent", false,
            isSequentiallyConsistent(Cex->Js));
    std::cout << "\n  found execution (valid + DRF + non-SC in the "
                 "original model):\n"
              << Cex->Js.toString();
  }
  T.note("skeletons: " + std::to_string(Stats.Skeletons) +
         ", rbf candidates: " + std::to_string(Stats.RbfCandidates) +
         ", time: " + std::to_string(Ms) + " ms");

  // Exhaustive absence below 4 events.
  SearchConfig Below = Cfg;
  Below.MaxEvents = 3;
  auto None = searchScDrfCex(Below);
  T.check("no counter-example below 4 events (exhaustive)", false,
          None.has_value());

  // The revised model: none within the full bound.
  SearchConfig Rev = Cfg;
  Rev.Js = ModelSpec::revised();
  auto RevCex = searchScDrfCex(Rev);
  T.check("no counter-example for the revised model within the bound",
          false, RevCex.has_value());

  return T.finish();
}
