//===- bench/BenchUtil.h - Shared bench-table machinery -------------------===//
///
/// \file
/// Every bench binary regenerates one of the paper's artefacts and prints a
/// paper-vs-measured table. A row "checks" when the measured result matches
/// the paper's claim; the binary exits non-zero if any row fails, so the
/// bench sweep doubles as an end-to-end reproduction gate.
///
//===----------------------------------------------------------------------===//

#ifndef JSMM_BENCH_BENCHUTIL_H
#define JSMM_BENCH_BENCHUTIL_H

#include "support/Str.h"

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

namespace jsmm {
namespace bench {

class Table {
public:
  Table(const std::string &Title, const std::string &PaperRef) {
    std::cout << "\n== " << Title << " ==\n   (" << PaperRef << ")\n\n";
  }

  /// Adds one claim row. \p Holds is the measured verdict.
  void row(const std::string &Claim, const std::string &Paper,
           const std::string &Measured, bool Holds) {
    ++Rows;
    Failures += Holds ? 0 : 1;
    std::cout << "  " << (Holds ? "[ok]  " : "[FAIL]") << " "
              << padRight(Claim, 52) << " paper: " << padRight(Paper, 22)
              << " measured: " << Measured << "\n";
  }

  /// Convenience: boolean claims where the paper expects \p Expected.
  void check(const std::string &Claim, bool Expected, bool Actual) {
    row(Claim, Expected ? "yes" : "no", Actual ? "yes" : "no",
        Expected == Actual);
  }

  /// Free-form informational line (not a checked claim).
  void note(const std::string &Text) {
    std::cout << "         " << Text << "\n";
  }

  /// \returns the process exit code: 0 iff every row checked.
  int finish() {
    std::cout << "\n  " << (Rows - Failures) << "/" << Rows
              << " claims reproduced\n";
    return Failures == 0 ? 0 : 1;
  }

private:
  unsigned Rows = 0;
  unsigned Failures = 0;
};

/// Wall-clock timing of a callable, in milliseconds.
template <typename FnT> double timedMs(FnT Fn) {
  auto Start = std::chrono::steady_clock::now();
  Fn();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

} // namespace bench
} // namespace jsmm

#endif // JSMM_BENCH_BENCHUTIL_H
