//===- bench/BenchUtil.h - Shared bench-table machinery -------------------===//
///
/// \file
/// Every bench binary regenerates one of the paper's artefacts and prints a
/// paper-vs-measured table. A row "checks" when the measured result matches
/// the paper's claim; the binary exits non-zero if any row fails, so the
/// bench sweep doubles as an end-to-end reproduction gate.
///
/// On finish() each table also writes a machine-readable BENCH_<id>.json
/// next to the working directory (claims, verdicts and any recorded
/// metrics), so the performance trajectory of the engine can be tracked
/// across PRs by diffing JSON instead of scraping stdout. Set
/// JSMM_BENCH_JSON_DIR to redirect the files, or to the empty string to
/// disable them.
///
//===----------------------------------------------------------------------===//

#ifndef JSMM_BENCH_BENCHUTIL_H
#define JSMM_BENCH_BENCHUTIL_H

#include "support/Str.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace jsmm {
namespace bench {

inline std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

class Table {
public:
  Table(const std::string &Title, const std::string &PaperRef)
      : Title(Title), PaperRef(PaperRef) {
    std::cout << "\n== " << Title << " ==\n   (" << PaperRef << ")\n\n";
  }

  /// Adds one claim row. \p Holds is the measured verdict.
  void row(const std::string &Claim, const std::string &Paper,
           const std::string &Measured, bool Holds) {
    Rows.push_back({Claim, Paper, Measured, Holds});
    Failures += Holds ? 0 : 1;
    std::cout << "  " << (Holds ? "[ok]  " : "[FAIL]") << " "
              << padRight(Claim, 52) << " paper: " << padRight(Paper, 22)
              << " measured: " << Measured << "\n";
  }

  /// Convenience: boolean claims where the paper expects \p Expected.
  void check(const std::string &Claim, bool Expected, bool Actual) {
    row(Claim, Expected ? "yes" : "no", Actual ? "yes" : "no",
        Expected == Actual);
  }

  /// Free-form informational line (not a checked claim).
  void note(const std::string &Text) {
    Notes.push_back(Text);
    std::cout << "         " << Text << "\n";
  }

  /// Records a numeric measurement (timings, counts, speedups) for the
  /// JSON artefact; also printed as a note.
  void metric(const std::string &Name, double Value,
              const std::string &Unit = "") {
    Metrics.push_back({Name, Value, Unit});
    note(Name + ": " + std::to_string(Value) + (Unit.empty() ? "" : " ") +
         Unit);
  }

  /// \returns the process exit code: 0 iff every row checked.
  int finish() {
    std::cout << "\n  " << (Rows.size() - Failures) << "/" << Rows.size()
              << " claims reproduced\n";
    writeJson();
    return Failures == 0 ? 0 : 1;
  }

private:
  struct RowEntry {
    std::string Claim, Paper, Measured;
    bool Holds;
  };
  struct MetricEntry {
    std::string Name;
    double Value;
    std::string Unit;
  };

  /// "E4: shapes ..." -> "E4"; otherwise the leading [A-Za-z0-9_-] run.
  std::string benchId() const {
    std::string Id;
    for (char C : Title) {
      if (std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '-')
        Id += C;
      else
        break;
    }
    return Id.empty() ? "bench" : Id;
  }

  void writeJson() const {
    const char *Dir = std::getenv("JSMM_BENCH_JSON_DIR");
    std::string Prefix = Dir ? Dir : ".";
    if (Prefix.empty())
      return; // JSMM_BENCH_JSON_DIR="" disables the artefact
    std::string Path = Prefix + "/BENCH_" + benchId() + ".json";
    std::ofstream Out(Path);
    if (!Out)
      return; // unwritable directory: the table on stdout still stands
    Out << "{\n  \"bench\": \"" << jsonEscape(benchId()) << "\",\n"
        << "  \"title\": \"" << jsonEscape(Title) << "\",\n"
        << "  \"paper_ref\": \"" << jsonEscape(PaperRef) << "\",\n"
        << "  \"claims\": " << Rows.size() << ",\n"
        << "  \"failures\": " << Failures << ",\n  \"rows\": [\n";
    for (size_t I = 0; I < Rows.size(); ++I)
      Out << "    {\"claim\": \"" << jsonEscape(Rows[I].Claim)
          << "\", \"paper\": \"" << jsonEscape(Rows[I].Paper)
          << "\", \"measured\": \"" << jsonEscape(Rows[I].Measured)
          << "\", \"ok\": " << (Rows[I].Holds ? "true" : "false") << "}"
          << (I + 1 < Rows.size() ? ",\n" : "\n");
    Out << "  ],\n  \"metrics\": [\n";
    for (size_t I = 0; I < Metrics.size(); ++I)
      Out << "    {\"name\": \"" << jsonEscape(Metrics[I].Name)
          << "\", \"value\": " << Metrics[I].Value << ", \"unit\": \""
          << jsonEscape(Metrics[I].Unit) << "\"}"
          << (I + 1 < Metrics.size() ? ",\n" : "\n");
    Out << "  ],\n  \"notes\": [\n";
    for (size_t I = 0; I < Notes.size(); ++I)
      Out << "    \"" << jsonEscape(Notes[I]) << "\""
          << (I + 1 < Notes.size() ? ",\n" : "\n");
    Out << "  ]\n}\n";
  }

  std::string Title;
  std::string PaperRef;
  std::vector<RowEntry> Rows;
  std::vector<MetricEntry> Metrics;
  std::vector<std::string> Notes;
  unsigned Failures = 0;
};

/// Wall-clock timing of a callable, in milliseconds.
template <typename FnT> double timedMs(FnT Fn) {
  auto Start = std::chrono::steady_clock::now();
  Fn();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

} // namespace bench
} // namespace jsmm

#endif // JSMM_BENCH_BENCHUTIL_H
