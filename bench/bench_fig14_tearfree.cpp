//===- bench_fig14_tearfree.cpp - Experiment E14 (Fig. 14, §6.4) ----------===//
///
/// \file
/// Regenerates the Fig. 14 tearing behaviour: a 16-bit tear-free read may
/// mix one byte of a racing 16-bit tear-free write with one byte of the
/// Init event under the specification's Tear-Free Reads rule — rf⁻¹ is not
/// functional even for well-behaved typed-array programs. The strengthened
/// rule of §6.4 counts Init and forbids the mix.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/SeqConsistency.h"
#include "exec/Enumerator.h"
#include "paper/Figures.h"
#include "unisize/Reduction.h"

using namespace jsmm;
using namespace jsmm::bench;
using namespace jsmm::paper;

int main() {
  Table T("E14: tearing involving the Init event",
          "Watt et al. PLDI 2020, Fig. 14, section 6.4");

  // Candidate-execution level.
  T.check("Fig. 14 execution valid under the spec rule (weak)", true,
          isValidForSomeTot(fig14Execution(), ModelSpec::revised()));
  T.check("forbidden under the strengthened rule", false,
          isValidForSomeTot(fig14Execution(),
                            ModelSpec::revisedStrongTearFree()));
  T.check("the mixed value is not sequentially consistent", false,
          isSequentiallyConsistent(fig14Execution()));

  // Program level: Fig. 14's program through the enumerator.
  Program P(32);
  P.Name = "fig14";
  ThreadBuilder T0 = P.thread();
  T0.load(Acc::u16(0)); // r = b[0]
  ThreadBuilder T1 = P.thread();
  T1.store(Acc::u16(0), 0x0101); // b[0] = 0x0101
  Outcome Torn = outcome({{0, 0, 0x0001}});
  EnumerationResult Weak = enumerateOutcomes(P, ModelSpec::revised());
  EnumerationResult Strong =
      enumerateOutcomes(P, ModelSpec::revisedStrongTearFree());
  T.check("outcome r=0x0001 allowed with the spec rule", true,
          Weak.allows(Torn));
  T.check("outcome r=0x0100 (other mix) allowed with the spec rule", true,
          Weak.allows(outcome({{0, 0, 0x0100}})));
  T.check("outcome r=0x0001 forbidden with the strong rule", false,
          Strong.allows(Torn));
  T.check("clean outcomes unaffected: r=0", true,
          Strong.allows(outcome({{0, 0, 0}})));
  T.check("clean outcomes unaffected: r=0x0101", true,
          Strong.allows(outcome({{0, 0, 0x0101}})));

  // rf⁻¹ functionality: under the strong rule every valid execution of
  // this (single-typed-array, tear-free) program is uni-size reducible.
  uint64_t ValidWeak = 0, WeakNonFunctional = 0;
  uint64_t ValidStrong = 0, StrongNonFunctional = 0;
  forEachCandidate(P, [&](const CandidateExecution &CE, const Outcome &O) {
    (void)O;
    if (isValidForSomeTot(CE, ModelSpec::revised())) {
      ++ValidWeak;
      if (!isUniSizeReducible(CE))
        ++WeakNonFunctional;
    }
    if (isValidForSomeTot(CE, ModelSpec::revisedStrongTearFree())) {
      ++ValidStrong;
      if (!isUniSizeReducible(CE))
        ++StrongNonFunctional;
    }
    return true;
  });
  T.row("valid executions with non-functional rf-1 [weak rule]", "> 0",
        std::to_string(WeakNonFunctional) + "/" + std::to_string(ValidWeak),
        WeakNonFunctional > 0);
  T.row("valid executions with non-functional rf-1 [strong rule]", "0",
        std::to_string(StrongNonFunctional) + "/" +
            std::to_string(ValidStrong),
        StrongNonFunctional == 0);

  return T.finish();
}
